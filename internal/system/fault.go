package system

import (
	"math"

	"dqalloc/internal/check"
	"dqalloc/internal/fault"
	"dqalloc/internal/network"
	"dqalloc/internal/policy"
	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
	"dqalloc/internal/workload"
)

// This file wires the fault-injection subsystem (internal/fault) into
// the system model: site crashes drain the execution engine, lossy
// transmissions lose shipped queries and result pages, and a per-query
// watchdog detects losses and re-allocates among the remaining live
// sites. Terminals are assumed to survive their site's crash (only the
// DB execution engine fails), so the closed population is preserved:
// every submitted query eventually completes or is explicitly rejected.
//
// Everything here is gated on s.faults != nil; a run with
// Config.Fault.Enabled == false schedules no extra events, draws no
// extra random numbers, and is bit-identical to a build without the
// subsystem.

// Scheduler event kinds for the fault layer (see sim.Event.Kind).
const (
	// eventKindTimeout tags watchdog expirations.
	eventKindTimeout byte = 0x43
	// eventKindRetry tags the end of a lost query's retry backoff.
	eventKindRetry byte = 0x44
)

// faultRuntime is the per-run state of the fault subsystem.
type faultRuntime struct {
	cfg fault.Config
	inj *fault.Injector

	// netStream and bcStream drive the ring and load-broadcast fault
	// models; they are dedicated children of the root stream so the
	// no-fault streams are never perturbed.
	netStream *rng.Stream
	bcStream  *rng.Stream

	// pending tracks every dispatched, uncompleted query's watchdog.
	pending map[*workload.Query]*faultPending

	lost            uint64
	retried         uint64
	abandoned       uint64
	preempted       uint64 // losses resolved by a hedge win or deadline abort
	pendingRecovery int
}

// faultPending is one query's recovery state.
type faultPending struct {
	// timer is the armed watchdog (or, for a lost query, its pending
	// retry event).
	timer sim.Handle
	// attempt counts re-allocation attempts consumed so far.
	attempt int
	// lost marks that the query's execution was wiped out and it awaits
	// its watchdog.
	lost bool
}

// totals implements the closure read by check.NewFaultConservation.
func (fr *faultRuntime) totals() check.FaultTotals {
	return check.FaultTotals{
		Lost:            fr.lost,
		Retried:         fr.retried,
		Abandoned:       fr.abandoned,
		Preempted:       fr.preempted,
		PendingRecovery: fr.pendingRecovery,
	}
}

// setupFaults builds the fault runtime during New. root is the run's
// root stream; children 4–6 are reserved for the fault layer.
func (s *System) setupFaults(root *rng.Stream) error {
	fr := &faultRuntime{
		cfg:     s.cfg.Fault,
		pending: make(map[*workload.Query]*faultPending),
	}
	inj, err := fault.NewInjector(s.sched, s.cfg.NumSites, s.cfg.Fault, root.Child(4), s.onSiteCrash, s.onSiteRepair)
	if err != nil {
		return err
	}
	fr.inj = inj
	// Policies consult the injector's live mask; it is updated in place
	// at crash and repair instants.
	s.env.Up = inj.Up()
	if s.cfg.Fault.NetworkFaults() {
		fr.netStream = root.Child(5)
		s.ring.SetFault(func() (bool, float64) { return fr.messageFate(fr.netStream) })
		if s.bcast != nil {
			fr.bcStream = root.Child(6)
			s.bcast.SetPerturb(func(int) (bool, float64) { return fr.messageFate(fr.bcStream) })
		}
	}
	s.faults = fr
	return nil
}

// messageFate draws one message's fate from the given stream: drop
// and/or extra latency. Both draws always happen (when their knob is
// on), so the stream's consumption depends only on the message count —
// the common-random-numbers discipline.
func (fr *faultRuntime) messageFate(stream *rng.Stream) (drop bool, delay float64) {
	if fr.cfg.DropProb > 0 {
		drop = stream.Bernoulli(fr.cfg.DropProb)
	}
	if fr.cfg.DelayMean > 0 {
		delay = stream.Exp(fr.cfg.DelayMean)
	}
	return drop, delay
}

// up reports site liveness; always true when faults are off.
func (s *System) up(site int) bool {
	return s.faults == nil || s.faults.inj.SiteUp(site)
}

// onSiteCrash is the injector's crash callback: the site's execution
// engine drops everything mid-service. Each drained query's load-table
// commitment is released and its loss recorded; the watchdog will
// re-allocate it.
func (s *System) onSiteCrash(site int) {
	for _, q := range s.sites[site].Crash() {
		if s.par != nil {
			if inst := s.par.instances[q]; inst != nil {
				// An operator carrier died with the site; the plan engine
				// settles it (and possibly the whole plan).
				s.parAttemptLost(inst, q)
				continue
			}
			if q.Phase == phaseDone {
				// A sibling carrier's loss above already collapsed its plan
				// and withdrew this (also-drained) carrier; nothing remains
				// to release.
				continue
			}
		}
		s.releaseAllocation(q)
		s.faultLost(q)
	}
	if s.repl != nil {
		// The crash wipes the site's fragment copies (except last copies,
		// which survive on stable storage) and aborts shipments it was
		// donating or receiving; newly uncovered deficits get rebuild
		// timers.
		s.replScheduleDeficits(s.repl.mgr.OnCrash(site, s.sched.Now()))
	}
	if s.avail != nil {
		s.availRecountAll()
	}
}

// onSiteRepair is the injector's repair callback: fragments whose
// surviving copies live at the repaired site become reachable again.
func (s *System) onSiteRepair(int) {
	if s.avail != nil {
		s.availRecountAll()
	}
}

// releaseAllocation removes q's commitment from the load table (the
// inverse of the Assign/AssignWork pair in dispatch).
func (s *System) releaseAllocation(q *workload.Query) {
	s.table.Complete(q.Exec, s.bound(q))
	s.table.CompleteWork(q.Exec, q.EstCPUDemand(), q.EstDiskDemand(s.cfg.DiskTime))
	s.replRelease(q, q.Exec)
}

// faultArm starts a newly dispatched query's watchdog.
func (s *System) faultArm(q *workload.Query) {
	if s.faults == nil {
		return
	}
	e := &faultPending{}
	s.faults.pending[q] = e
	s.armWatchdog(q, e)
}

// armWatchdog (re)schedules the detection timer.
func (s *System) armWatchdog(q *workload.Query, e *faultPending) {
	e.timer = s.sched.After(s.faults.cfg.DetectTimeout, func() { s.faultTimeout(q) })
	e.timer.SetKind(eventKindTimeout)
}

// faultLost records that q's execution was wiped out (site crash or
// message drop). The query stays in the in-flight population; its
// armed watchdog will notice the loss and retry or reject it.
func (s *System) faultLost(q *workload.Query) {
	if s.hedge != nil {
		if race := s.hedge.byClone[q]; race != nil {
			// A racing clone died; clones carry no watchdog, so the loss
			// settles immediately instead of entering the retry ledger.
			s.cloneDied(q, race)
			return
		}
	}
	e := s.faults.pending[q]
	if e == nil || e.lost {
		return // already accounted; nothing further can be lost
	}
	e.lost = true
	q.Phase = phaseLost
	s.faults.lost++
	s.faults.pendingRecovery++
	if s.aud != nil {
		s.aud.Lost(s.sched.Now())
	}
}

// faultTimeout fires when a query's watchdog expires. A query that is
// merely slow re-arms the watchdog (execution is at-most-once: the
// original dispatch is never duplicated while it may still be alive); a
// lost query consumes a retry attempt.
func (s *System) faultTimeout(q *workload.Query) {
	e := s.faults.pending[q]
	if e == nil {
		return
	}
	if !e.lost {
		s.armWatchdog(q, e)
		return
	}
	s.faultRetryOrAbandon(q, e)
}

// faultRetryOrAbandon consumes one retry attempt for a lost query:
// either its backoff timer is scheduled or its budget is exhausted and
// the query is rejected.
func (s *System) faultRetryOrAbandon(q *workload.Query, e *faultPending) {
	e.attempt++
	if e.attempt > s.faults.cfg.MaxRetries {
		if s.hedge != nil {
			if race := s.hedge.races[q]; race != nil && race.clone != nil {
				// The retry budget ran out but a hedge clone is still
				// racing: let the clone carry the query instead of
				// rejecting it. The loss counts as preempted.
				race.primaryDead = true
				q.Phase = phaseDone
				s.faults.pendingRecovery--
				s.faults.preempted++
				delete(s.faults.pending, q)
				return
			}
		}
		s.faults.pendingRecovery--
		s.faults.abandoned++
		delete(s.faults.pending, q)
		s.rejectQuery(q)
		return
	}
	backoff := s.faults.cfg.RetryBackoff * math.Pow(2, float64(e.attempt-1))
	e.timer = s.sched.After(backoff, func() { s.faultRedispatch(q) })
	e.timer.SetKind(eventKindRetry)
}

// faultRedispatch re-allocates a lost query after its backoff: the
// policy runs again over the currently live sites and the query
// restarts from its first read (lost work is genuinely lost). When no
// site can take it, another attempt is consumed.
func (s *System) faultRedispatch(q *workload.Query) {
	e := s.faults.pending[q]
	if e == nil || !e.lost {
		return
	}
	exec := s.selectSite(q)
	if exec == policy.NoSite {
		s.faultRetryOrAbandon(q, e)
		return
	}
	s.faults.pendingRecovery--
	s.faults.retried++
	e.lost = false
	q.ReadsDone = 0
	if s.aud != nil {
		s.aud.Retried(s.sched.Now())
	}
	s.dispatch(q, exec)
	s.hedgeArm(q)
	s.armWatchdog(q, e)
}

// faultComplete retires a completed query's watchdog.
func (s *System) faultComplete(q *workload.Query) {
	if s.faults == nil {
		return
	}
	if e := s.faults.pending[q]; e != nil {
		s.sched.Cancel(e.timer)
		delete(s.faults.pending, q)
	}
}

// rejectQuery gives up on a query: it never completes, the rejection is
// counted, its deadline watchdog and any unfired hedge race are retired,
// and — in closed mode, the terminal surviving regardless — its terminal
// returns to the think state, preserving the closed population.
func (s *System) rejectQuery(q *workload.Query) {
	s.deadlineCancel(q)
	if s.hedge != nil {
		// Every rejection path reaches here with no live clone (a racing
		// clone preempts abandonment), so only an idle race can remain.
		if race := s.hedge.races[q]; race != nil {
			s.sched.Cancel(race.timer)
			delete(s.hedge.races, q)
		}
	}
	q.Phase = phaseDone
	s.rejected++
	if s.aud != nil {
		s.aud.Rejected(s.sched.Now())
	}
	if s.arr == nil {
		s.startThink(q.Home)
	}
}

// shipMessage builds the ring message dispatching q to site exec, with
// the fault layer's delivery-time liveness check and drop recovery.
func (s *System) shipMessage(q *workload.Query, from, to int, size float64) network.Message {
	m := network.Message{
		From: from,
		To:   to,
		Size: size,
		OnDeliver: func() {
			if s.dropDefunct(q) {
				return // cancelled in transit; commitment already released
			}
			if !s.up(to) {
				// The destination died while the query was in flight.
				s.releaseAllocation(q)
				s.faultLost(q)
				return
			}
			s.landQuery(q, to)
		},
	}
	if s.faults != nil {
		m.OnDrop = func() {
			if s.dropDefunct(q) {
				return
			}
			s.releaseAllocation(q)
			s.faultLost(q)
		}
	}
	return m
}
