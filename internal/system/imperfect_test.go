package system

import (
	"testing"

	"dqalloc/internal/noise"
	"dqalloc/internal/policy"
	"dqalloc/internal/workload"
)

// imperfectCfg is the shared short-horizon configuration for the
// imperfect-information tests, with every robustness knob explicitly at
// its zero value.
func imperfectCfg(kind policy.Kind, mode InfoMode) Config {
	cfg := Default()
	cfg.PolicyKind = kind
	cfg.Seed = 3
	cfg.Warmup = 500
	cfg.Measure = 6000
	cfg.Audit = true
	cfg.TraceDigest = true
	cfg.Noise = noise.Config{}
	cfg.Tuning = policy.Tuning{}
	cfg.Admission = AdmissionConfig{}
	if mode == InfoPeriodic {
		cfg.InfoMode = InfoPeriodic
		cfg.InfoPeriod = 40
	}
	return cfg
}

func runDigest(t *testing.T, cfg Config) Results {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if err := sys.Audit(); err != nil {
		t.Fatal(err)
	}
	return r
}

// goldenDigests pins the event-stream digests of every policy, under
// perfect and periodic load information, to the values captured before
// the imperfect-information extension landed. Both the knobs-disabled
// identity test below and the pooled-kernel equivalence test in
// digestequiv_test.go assert against this same table: any kernel or
// model change that alters the event stream trips them.
var goldenDigests = []struct {
	mode InfoMode
	kind policy.Kind
	want uint64
}{
	{InfoPerfect, policy.Local, 0x31d6acb070b2ccaa},
	{InfoPerfect, policy.Random, 0x02ba549ddcb61f83},
	{InfoPerfect, policy.BNQ, 0x380da894aab82ad0},
	{InfoPerfect, policy.BNQRD, 0x1a2f4d1c024bad78},
	{InfoPerfect, policy.LERT, 0x67c72e035a53b4d9},
	{InfoPerfect, policy.Work, 0x1f71c2e087a4026b},
	{InfoPeriodic, policy.Local, 0xea7ee7abc2c9d700},
	{InfoPeriodic, policy.Random, 0xa980e348d693ffdc},
	{InfoPeriodic, policy.BNQ, 0x97c6c670b758fa51},
	{InfoPeriodic, policy.BNQRD, 0x3418525d8392d3de},
	{InfoPeriodic, policy.LERT, 0x2dbc0fa32af8efe8},
	{InfoPeriodic, policy.Work, 0xa8b9b21c6f758680},
}

// TestGoldenDigestsWithKnobsDisabled: with noise, anti-herd tuning, and
// admission control all disabled, the model must remain bit-identical to
// the pre-extension tree.
func TestGoldenDigestsWithKnobsDisabled(t *testing.T) {
	for _, g := range goldenDigests {
		t.Run(g.mode.String()+"/"+g.kind.String(), func(t *testing.T) {
			r := runDigest(t, imperfectCfg(g.kind, g.mode))
			if r.TraceDigest != g.want {
				t.Errorf("digest %#x, want golden %#x — disabled knobs changed the event stream",
					r.TraceDigest, g.want)
			}
		})
	}
}

// TestNoiseZeroSigmaDigestMatchesDisabled: an enabled injector with zero
// magnitudes multiplies every estimate by exactly 1 and touches only its
// own dedicated stream, so the event stream must match a disabled run
// bit for bit.
func TestNoiseZeroSigmaDigestMatchesDisabled(t *testing.T) {
	for _, kind := range []policy.Kind{policy.LERT, policy.Work} {
		base := runDigest(t, imperfectCfg(kind, InfoPerfect))
		cfg := imperfectCfg(kind, InfoPerfect)
		cfg.Noise = noise.Config{Enabled: true, Dist: noise.Lognormal}
		noisy := runDigest(t, cfg)
		if noisy.TraceDigest != base.TraceDigest {
			t.Errorf("%v: zero-sigma noise digest %#x != disabled %#x",
				kind, noisy.TraceDigest, base.TraceDigest)
		}
	}
}

// TestNoiseChangesAllocations: real noise must actually divert the
// cost-based policies (different event stream) while staying fully
// audited, and the realized-error statistics must reflect it.
func TestNoiseChangesAllocations(t *testing.T) {
	base := runDigest(t, imperfectCfg(policy.LERT, InfoPerfect))
	cfg := imperfectCfg(policy.LERT, InfoPerfect)
	cfg.Noise = noise.Default()
	r := runDigest(t, cfg)
	if r.TraceDigest == base.TraceDigest {
		t.Error("lognormal sigma 0.5 left the event stream unchanged")
	}
	if r.Completed == 0 {
		t.Fatal("no completions under noise")
	}
	// EstPageCPU is exact without noise, so any positive mean error is
	// injector-caused; EstReads carries intrinsic class-mean spread, which
	// the injected error must widen.
	if r.EstCPUErr <= 0 {
		t.Errorf("EstCPUErr = %v, want > 0 under injected noise", r.EstCPUErr)
	}
	if r.EstReadsErr <= base.EstReadsErr {
		t.Errorf("EstReadsErr = %v, want above the intrinsic %v", r.EstReadsErr, base.EstReadsErr)
	}
	if base.EstCPUErr != 0 {
		t.Errorf("baseline EstCPUErr = %v, want exactly 0 (class-mean estimates)", base.EstCPUErr)
	}
}

// TestAdmissionNonBindingMatchesDisabled: admission control with a bound
// the closed population can never reach must schedule no events, draw no
// random numbers, and leave the event stream bit-identical.
func TestAdmissionNonBindingMatchesDisabled(t *testing.T) {
	base := runDigest(t, imperfectCfg(policy.BNQ, InfoPerfect))
	cfg := imperfectCfg(policy.BNQ, InfoPerfect)
	cfg.Admission = AdmissionConfig{Enabled: true, MaxQueue: cfg.NumSites*cfg.MPL + 1, Defer: true, DeferDelay: 5, MaxDefers: 3}
	r := runDigest(t, cfg)
	if r.TraceDigest != base.TraceDigest {
		t.Errorf("non-binding admission digest %#x != disabled %#x", r.TraceDigest, base.TraceDigest)
	}
	if r.QueriesShed != 0 || r.QueriesDeferred != 0 {
		t.Errorf("non-binding admission shed %d / deferred %d queries", r.QueriesShed, r.QueriesDeferred)
	}
}

// TestAdmissionShedsAndDefersUnderOverload: a tight bound under the herd-
// prone stale-information configuration must visibly defer and shed,
// keep every terminal cycling, and hold the admission-conservation
// auditor green throughout.
func TestAdmissionShedsAndDefersUnderOverload(t *testing.T) {
	cfg := imperfectCfg(policy.BNQ, InfoPeriodic)
	cfg.Admission = AdmissionConfig{Enabled: true, MaxQueue: 6, Defer: true, DeferDelay: 5, MaxDefers: 2}
	cfg.Noise = noise.Default()
	r := runDigest(t, cfg) // runDigest fails the test on any audit violation
	if r.QueriesDeferred == 0 {
		t.Error("overloaded run deferred nothing")
	}
	if r.QueriesShed == 0 {
		t.Error("overloaded run shed nothing")
	}
	if r.QueriesRejected < r.QueriesShed {
		t.Errorf("rejections %d below sheds %d", r.QueriesRejected, r.QueriesShed)
	}
	if r.Completed == 0 {
		t.Fatal("no completions — terminals stopped cycling")
	}
	// Shedding returns terminals to thinking, so the closed loop keeps
	// producing work at a healthy rate.
	if r.Throughput <= 0 {
		t.Errorf("throughput %v under admission control", r.Throughput)
	}
}

// TestAdmissionShedImmediatelyWithoutDefer: Defer off must shed on the
// first bounce and never park queries.
func TestAdmissionShedImmediatelyWithoutDefer(t *testing.T) {
	cfg := imperfectCfg(policy.BNQ, InfoPeriodic)
	cfg.Admission = AdmissionConfig{Enabled: true, MaxQueue: 6}
	r := runDigest(t, cfg)
	if r.QueriesDeferred != 0 {
		t.Errorf("defer-off run deferred %d queries", r.QueriesDeferred)
	}
	if r.QueriesShed == 0 {
		t.Error("defer-off overloaded run shed nothing")
	}
}

// TestAntiHerdReducesHerdTransfers: under stale load information the
// plain selector herds; hysteresis plus power-of-two sampling must cut
// the measured herd-transfer fraction, audited throughout.
func TestAntiHerdReducesHerdTransfers(t *testing.T) {
	base := runDigest(t, imperfectCfg(policy.BNQ, InfoPeriodic))
	if base.HerdTransfers == 0 {
		t.Fatal("stale-information baseline shows no herd transfers; the metric is broken")
	}
	cfg := imperfectCfg(policy.BNQ, InfoPeriodic)
	cfg.Tuning = policy.Tuning{Hysteresis: 0.3, PowerK: 2, RandomTies: true}
	tuned := runDigest(t, cfg)
	if tuned.Completed == 0 {
		t.Fatal("no completions under tuning")
	}
	if tuned.HerdFrac >= base.HerdFrac {
		t.Errorf("tuned herd fraction %.3f not below baseline %.3f", tuned.HerdFrac, base.HerdFrac)
	}
}

// TestMigrationUnderEstimationError: the migration extension must stay
// conservation-clean when its remaining-cost estimates are noise-misled
// — the regression guard for the estimate-based remCPU computation.
func TestMigrationUnderEstimationError(t *testing.T) {
	cfg := imperfectCfg(policy.LERT, InfoPerfect)
	cfg.Migration = DefaultMigration()
	cfg.Noise = noise.Default()
	r := runDigest(t, cfg)
	if r.Completed == 0 {
		t.Fatal("no completions")
	}
	if r.Migrations == 0 {
		t.Skip("no migrations triggered at this seed; nothing to regress")
	}
}

// TestAllKnobsTogetherAudited: noise, anti-herd tuning, admission
// control, staleness, and migration all at once must run to completion
// with every auditor green.
func TestAllKnobsTogetherAudited(t *testing.T) {
	cfg := imperfectCfg(policy.LERT, InfoPeriodic)
	cfg.Noise = noise.Default()
	cfg.Tuning = policy.Tuning{Hysteresis: 0.2, PowerK: 3, RandomTies: true}
	cfg.Admission = DefaultAdmission()
	cfg.Migration = DefaultMigration()
	r := runDigest(t, cfg)
	if r.Completed == 0 {
		t.Fatal("no completions with all robustness knobs enabled")
	}
}

// TestImperfectConfigValidation covers the new Config fields.
func TestImperfectConfigValidation(t *testing.T) {
	mk := func(mut func(*Config)) Config {
		cfg := Default()
		mut(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"baseline", mk(func(*Config) {}), true},
		{"noise default", mk(func(c *Config) { c.Noise = noise.Default() }), true},
		{"noise bad sigma", mk(func(c *Config) {
			c.Noise = noise.Config{Enabled: true, Dist: noise.Lognormal, ReadsSigma: -1}
		}), false},
		{"noise missing dist", mk(func(c *Config) { c.Noise = noise.Config{Enabled: true} }), false},
		{"tuning ok", mk(func(c *Config) { c.Tuning = policy.Tuning{Hysteresis: 0.2, PowerK: 2} }), true},
		{"tuning negative margin", mk(func(c *Config) { c.Tuning = policy.Tuning{Hysteresis: -0.1} }), false},
		{"tuning k above sites", mk(func(c *Config) { c.Tuning = policy.Tuning{PowerK: 7} }), false},
		{"tuning on LOCAL", mk(func(c *Config) {
			c.PolicyKind = policy.Local
			c.Tuning = policy.Tuning{Hysteresis: 0.1}
		}), false},
		{"tuning on RANDOM", mk(func(c *Config) {
			c.PolicyKind = policy.Random
			c.Tuning = policy.Tuning{PowerK: 2}
		}), false},
		{"tuning on custom policy", mk(func(c *Config) {
			c.CustomPolicy = localPolicyStub{}
			c.Tuning = policy.Tuning{Hysteresis: 0.1}
		}), false},
		{"admission default", mk(func(c *Config) { c.Admission = DefaultAdmission() }), true},
		{"admission zero bound", mk(func(c *Config) {
			c.Admission = AdmissionConfig{Enabled: true, MaxQueue: 0}
		}), false},
		{"admission defer without delay", mk(func(c *Config) {
			c.Admission = AdmissionConfig{Enabled: true, MaxQueue: 10, Defer: true}
		}), false},
		{"admission negative defers", mk(func(c *Config) {
			c.Admission = AdmissionConfig{Enabled: true, MaxQueue: 10, MaxDefers: -1}
		}), false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// localPolicyStub is a minimal custom policy for validation tests.
type localPolicyStub struct{}

func (localPolicyStub) Name() string { return "stub" }
func (localPolicyStub) Select(_ *workload.Query, arrival int, _ *policy.Env) int {
	return arrival
}
