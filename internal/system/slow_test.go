package system

import (
	"math"
	"reflect"
	"testing"

	"dqalloc/internal/fault"
	"dqalloc/internal/loadinfo"
	"dqalloc/internal/policy"
)

// slowConfig returns a short audited run with aggressive fail-slow
// injection: 10× gray episodes every ~2000 time units lasting ~500, no
// crashes, reliable network.
func slowConfig(kind policy.Kind, seed uint64) Config {
	cfg := Default()
	cfg.PolicyKind = kind
	cfg.Seed = seed
	cfg.Warmup = 500
	cfg.Measure = 8000
	cfg.Audit = true
	cfg.TraceDigest = true
	cfg.Fault = fault.DefaultSlow()
	cfg.Fault.SlowMTTF = 2000
	cfg.Fault.SlowMTTR = 500
	return cfg
}

// TestSlowFaultSmoke: a heavily gray-failed run must stay audit-clean,
// actually open episodes, accumulate degraded time, and keep completing
// queries (nothing is ever lost to a fail-slow site).
func TestSlowFaultSmoke(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.Random, policy.BNQ, policy.LERT} {
		t.Run(kind.String(), func(t *testing.T) {
			r := runCfg(t, slowConfig(kind, 3))
			if r.SlowEpisodes == 0 {
				t.Error("no fail-slow episodes over ~4 MTTFs per site")
			}
			if r.Completed == 0 {
				t.Error("no completions")
			}
			if r.QueriesLost != 0 {
				t.Errorf("%d queries lost: fail-slow must never lose work", r.QueriesLost)
			}
			var degraded float64
			for s, d := range r.DegradedTime {
				if d < 0 || d > r.MeasuredTime {
					t.Errorf("site %d degraded time %v outside [0, %v]", s, d, r.MeasuredTime)
				}
				degraded += d
			}
			if degraded == 0 {
				t.Error("no degraded time recorded despite episodes")
			}
			// Gray failures must hurt: the same run without them is faster.
			clean := slowConfig(kind, 3)
			clean.Fault = fault.Config{}
			if base := runCfg(t, clean); r.MeanResponse <= base.MeanResponse {
				t.Errorf("degraded response %v not above clean %v", r.MeanResponse, base.MeanResponse)
			}
		})
	}
}

// TestSlowDigestDeterministic: same seed, same episodes → identical
// event stream; a different seed must differ.
func TestSlowDigestDeterministic(t *testing.T) {
	a := runCfg(t, slowConfig(policy.LERT, 3))
	b := runCfg(t, slowConfig(policy.LERT, 3))
	if a.TraceDigest != b.TraceDigest {
		t.Errorf("same seed digests differ: %x vs %x", a.TraceDigest, b.TraceDigest)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed results differ:\n%+v\nvs\n%+v", a, b)
	}
	if c := runCfg(t, slowConfig(policy.LERT, 4)); c.TraceDigest == a.TraceDigest {
		t.Errorf("different seeds share digest %x", a.TraceDigest)
	}
}

// TestSlowFactorOneMatchesCrashConfig: fail-slow episodes with factor 1
// fire onset/recovery events but must not move a single measurement —
// the rate hooks at rate 1 are exact no-ops. This pins the bit-identity
// of the queue rate-scaling refactor under live episode traffic.
func TestSlowFactorOneMatchesCrashConfig(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.Random, policy.LERT} {
		t.Run(kind.String(), func(t *testing.T) {
			base := faultyConfig(kind, 7)
			noop := faultyConfig(kind, 7)
			noop.Fault.SlowMTTF = 2000
			noop.Fault.SlowMTTR = 500
			noop.Fault.SlowFactor = 1

			a := runCfg(t, base)
			b := runCfg(t, noop)
			if b.SlowEpisodes == 0 {
				t.Fatal("no episodes fired in the factor-1 run")
			}
			// The episode events themselves legitimately change the digest
			// and event count, and the slow ledger fields are new; every
			// model measurement must be untouched.
			a.TraceDigest, b.TraceDigest = 0, 0
			a.EventsFired, b.EventsFired = 0, 0
			b.SlowEpisodes, b.DegradedTime = 0, nil
			if !reflect.DeepEqual(a, b) {
				t.Errorf("factor-1 run differs from crash-only run:\n%+v\nvs\n%+v", a, b)
			}
		})
	}
}

// TestSuspicionRoutesAroundGraySite: with the detector on, allocation
// must demonstrably steer queries off suspect homes and recover real
// response time. LOCAL is the policy with everything to gain: it never
// reads the load table, so without the detector its queries crawl
// through every 10× episode at their home site. (Cost-based policies
// already route around gray sites partially — the victim's backlog
// shows up in their load view.)
func TestSuspicionRoutesAroundGraySite(t *testing.T) {
	blind := slowConfig(policy.Local, 5)
	aware := slowConfig(policy.Local, 5)
	aware.Suspect = loadinfo.DefaultSuspect()

	rb := runCfg(t, blind)
	ra := runCfg(t, aware)
	if ra.SuspectTransfers == 0 {
		t.Error("detector never steered a query off a suspect home")
	}
	if ra.MeanResponse >= rb.MeanResponse {
		t.Errorf("detection-on response %v not below detection-off %v",
			ra.MeanResponse, rb.MeanResponse)
	}
}

// TestStragglerHedging: with hedging and the detector on, local queries
// stuck at a suspect site must be raced by clones, and some races must
// be won against a live fail-slow episode.
func TestStragglerHedging(t *testing.T) {
	cfg := slowConfig(policy.LERT, 6)
	cfg.Suspect = loadinfo.DefaultSuspect()
	cfg.Hedge = DefaultHedge()
	r := runCfg(t, cfg)
	if r.Hedged == 0 {
		t.Fatal("no hedges launched under gray failures")
	}
	if r.HedgeWins == 0 {
		t.Error("no hedge wins under 10× gray failures")
	}
	if r.HedgeWinsVsSlow == 0 {
		t.Error("no hedge wins against a live fail-slow episode")
	}
	if r.HedgeWinsVsSlow > r.HedgeWins {
		t.Errorf("HedgeWinsVsSlow %d exceeds HedgeWins %d", r.HedgeWinsVsSlow, r.HedgeWins)
	}
}

// TestBrownoutSmoke: ring brownouts must open, accumulate browned-out
// time, and stretch transmissions enough to slow remote-heavy policies.
func TestBrownoutSmoke(t *testing.T) {
	cfg := Default()
	cfg.PolicyKind = policy.Random // plenty of ring traffic
	cfg.Seed = 3
	cfg.Warmup = 500
	cfg.Measure = 8000
	cfg.Audit = true
	cfg.TraceDigest = true
	cfg.Fault = fault.Default()
	cfg.Fault.MTTF = math.Inf(1)
	cfg.Fault.BrownoutMTTF = 1500
	cfg.Fault.BrownoutMTTR = 500
	cfg.Fault.BrownoutFactor = 8

	r := runCfg(t, cfg)
	if r.Brownouts == 0 {
		t.Fatal("no brownouts over ~5 MTTFs")
	}
	if r.BrownoutTime <= 0 || r.BrownoutTime > r.MeasuredTime {
		t.Errorf("brownout time %v outside (0, %v]", r.BrownoutTime, r.MeasuredTime)
	}
	if r.SlowEpisodes != 0 {
		t.Errorf("%d fail-slow episodes in a brownout-only run", r.SlowEpisodes)
	}
	clean := cfg
	clean.Fault = fault.Config{}
	base := runCfg(t, clean)
	if r.SubnetUtil <= base.SubnetUtil {
		t.Errorf("browned-out subnet utilization %v not above clean %v", r.SubnetUtil, base.SubnetUtil)
	}
	if r.MeanResponse <= base.MeanResponse {
		t.Errorf("browned-out response %v not above clean %v", r.MeanResponse, base.MeanResponse)
	}
}

// TestSlowDisabledBitIdentical: explicitly zeroed fail-slow fields on an
// enabled crash config must reproduce the crash-only digest bit for bit
// — the gate is the predicate, not field presence.
func TestSlowDisabledBitIdentical(t *testing.T) {
	a := runCfg(t, faultyConfig(policy.LERT, 3))
	cfg := faultyConfig(policy.LERT, 3)
	cfg.Fault.SlowMTTF = 0
	cfg.Fault.BrownoutMTTF = math.Inf(1)
	b := runCfg(t, cfg)
	if a.TraceDigest != b.TraceDigest {
		t.Errorf("zeroed slow fields changed the digest: %x vs %x", a.TraceDigest, b.TraceDigest)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("zeroed slow fields changed the results")
	}
}

// TestSuspectConfigValidation: invalid detector settings must be
// rejected at Config.Validate.
func TestSuspectConfigValidation(t *testing.T) {
	cfg := Default()
	cfg.Suspect = loadinfo.DefaultSuspect()
	cfg.Suspect.Ratio = 0.5
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid suspect config accepted")
	}
}
