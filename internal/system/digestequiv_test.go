package system

import (
	"testing"

	"dqalloc/internal/fault"
	"dqalloc/internal/noise"
	"dqalloc/internal/policy"
	"dqalloc/internal/sim"
)

// This file is the digest-equivalence gate for kernel optimizations: the
// event-pooling pass (free lists, preallocated payloads, worker reuse)
// must change nothing but speed. Every digest here was captured on the
// pre-pooling tree; a run on the optimized kernel must reproduce each
// one bit for bit. Unlike the knobs-disabled identity tests, the two
// extra configs below exercise the fault and noise layers *enabled*, so
// the pooled cancel/reuse paths (watchdogs, retries, drops, delayed
// broadcasts) are covered too, not just the happy path.

// faultOnConfig enables site crashes, a lossy ring, and perturbed load
// broadcasts on top of the shared short-horizon base — the heaviest
// consumer of event cancellation and reuse.
func faultOnConfig() Config {
	cfg := imperfectCfg(policy.LERT, InfoPeriodic)
	cfg.Fault = fault.Config{
		Enabled:       true,
		MTTF:          1500,
		MTTR:          300,
		DropProb:      0.05,
		DetectTimeout: 150,
		RetryBackoff:  10,
		MaxRetries:    8,
	}
	return cfg
}

// noiseOnConfig enables lognormal estimation error, which diverts the
// cost-based allocator and therefore shifts the whole event stream.
func noiseOnConfig() Config {
	cfg := imperfectCfg(policy.LERT, InfoPerfect)
	cfg.Noise = noise.Default()
	return cfg
}

// TestDigestEquivalencePooledKernel runs the 12 recorded golden digest
// configurations plus one fault-on and one noise-on configuration and
// asserts bit-identity with the digests checked in before the pooling
// optimization. Audit stays on for every run, so the equivalence proof
// also holds under the runtime invariant auditors.
func TestDigestEquivalencePooledKernel(t *testing.T) {
	for _, g := range goldenDigests {
		t.Run("golden/"+g.mode.String()+"/"+g.kind.String(), func(t *testing.T) {
			r := runDigest(t, imperfectCfg(g.kind, g.mode))
			if r.TraceDigest != g.want {
				t.Errorf("digest %#x, want pre-pooling golden %#x — the optimization changed the event stream",
					r.TraceDigest, g.want)
			}
		})
	}
	extra := []struct {
		name string
		cfg  Config
		want uint64
	}{
		{"fault-on/LERT/periodic", faultOnConfig(), 0xb9301bf99abd3f78},
		{"noise-on/LERT/perfect", noiseOnConfig(), 0x43c038fbbd5ab1a8},
	}
	for _, g := range extra {
		t.Run(g.name, func(t *testing.T) {
			r := runDigest(t, g.cfg)
			if r.TraceDigest != g.want {
				t.Errorf("digest %#x, want pre-pooling golden %#x — the optimization changed the event stream",
					r.TraceDigest, g.want)
			}
		})
	}
}

// TestDigestEquivalenceSchedulerImpls is the same gate for the
// calendar-queue scheduler: both kernel implementations must reproduce
// every golden digest bit for bit. The calendar queue is the default, so
// TestDigestEquivalencePooledKernel already covers it on the full
// golden table; here the reference heap replays that table, and the
// fault-on and noise-on configurations — the heaviest consumers of
// event cancellation and record reuse, where a routing or free-list
// divergence would surface first — run under both implementations
// explicitly. A mismatch means a scheduler implementation reordered or
// dropped events, which the calendar's design forbids by construction
// (see DESIGN.md §12).
func TestDigestEquivalenceSchedulerImpls(t *testing.T) {
	for _, g := range goldenDigests {
		t.Run("golden/heap/"+g.mode.String()+"/"+g.kind.String(), func(t *testing.T) {
			cfg := imperfectCfg(g.kind, g.mode)
			cfg.Scheduler = sim.Heap
			r := runDigest(t, cfg)
			if r.TraceDigest != g.want {
				t.Errorf("heap digest %#x, want golden %#x — the scheduler changed the event stream",
					r.TraceDigest, g.want)
			}
		})
	}
	heavy := []struct {
		name string
		cfg  Config
		want uint64
	}{
		{"fault-on/LERT/periodic", faultOnConfig(), 0xb9301bf99abd3f78},
		{"noise-on/LERT/perfect", noiseOnConfig(), 0x43c038fbbd5ab1a8},
	}
	for _, g := range heavy {
		for _, impl := range []sim.Impl{sim.Calendar, sim.Heap} {
			t.Run(g.name+"/"+impl.String(), func(t *testing.T) {
				cfg := g.cfg
				cfg.Scheduler = impl
				r := runDigest(t, cfg)
				if r.TraceDigest != g.want {
					t.Errorf("%v digest %#x, want golden %#x — the scheduler changed the event stream",
						impl, r.TraceDigest, g.want)
				}
			})
		}
	}
}
