package system

import (
	"bufio"
	"fmt"
	"io"

	"dqalloc/internal/workload"
)

// Tracer records one CSV line per completed query inside the measured
// window — the raw material for offline analysis (waiting-time
// distributions, per-site flow maps, migration audits). Attach one via
// Config.Trace.
type Tracer struct {
	w      *bufio.Writer
	header bool
	lines  uint64
}

// NewTracer wraps w in a tracer. Call Flush when the run is over.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w)}
}

// Lines returns the number of records written.
func (t *Tracer) Lines() uint64 { return t.lines }

// Flush drains buffered records to the underlying writer.
func (t *Tracer) Flush() error { return t.w.Flush() }

// record writes one completed-query line.
func (t *Tracer) record(q *workload.Query, completeAt float64, className string) {
	if !t.header {
		t.header = true
		fmt.Fprintln(t.w, "id,class,home,exec,object,submit,complete,response,exec_service,net_service,wait,reads,migrations")
	}
	response := completeAt - q.SubmitTime
	fmt.Fprintf(t.w, "%d,%s,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%d\n",
		q.ID, className, q.Home, q.Exec, q.Object,
		q.SubmitTime, completeAt, response,
		q.ExecService(), q.NetService, response-q.ExecService(),
		q.ReadsTotal, q.Migrations)
	t.lines++
}
