package system

import (
	"math"
	"testing"

	"dqalloc/internal/arrival"
	"dqalloc/internal/fault"
)

// sanitize folds an arbitrary fuzzed float into [lo, hi], mapping
// NaN/Inf to lo.
func sanitize(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return lo
	}
	v = math.Abs(v)
	return lo + math.Mod(v, hi-lo)
}

// FuzzArrivalConfig drives short audited runs across the overload
// knob space — arrival process and rates, burst parameters, deadlines,
// hedging, fault injection — asserting that no auditor fires and no
// event ledger leaks, whatever the combination.
func FuzzArrivalConfig(f *testing.F) {
	f.Add(uint64(1), 0.2, 4.0, 400.0, 100.0, 250.0, 0.9, 25.0, true, true, true)
	f.Add(uint64(2), 0.35, 1.5, 50.0, 20.0, 60.0, 0.5, 5.0, false, true, false)
	f.Add(uint64(3), 0.05, 10.0, 1000.0, 10.0, 500.0, 0.99, 100.0, true, false, true)
	f.Add(uint64(4), 0.4, 2.0, 200.0, 200.0, 100.0, 0.75, 50.0, false, false, false)
	f.Fuzz(func(t *testing.T, seed uint64, rate, burst, calm, burstDwell,
		deadline, quantile, minDelay float64, mmpp, hedge, faults bool) {
		cfg := Default()
		cfg.NumSites = 3
		cfg.MPL = 3
		cfg.Warmup = 50
		cfg.Measure = 500
		cfg.Seed = seed%1024 + 1
		cfg.Audit = true
		cfg.Arrival = arrival.Config{
			Enabled: true,
			Process: arrival.Poisson,
			Rate:    sanitize(rate, 0.01, 0.5),
		}
		if mmpp {
			cfg.Arrival.Process = arrival.MMPP
			cfg.Arrival.BurstFactor = sanitize(burst, 1, 12)
			cfg.Arrival.CalmMean = sanitize(calm, 10, 1000)
			cfg.Arrival.BurstMean = sanitize(burstDwell, 10, 1000)
		}
		cfg.Deadline = DeadlineConfig{Enabled: true, Deadline: sanitize(deadline, 20, 800)}
		if hedge {
			cfg.Hedge = HedgeConfig{
				Enabled:  true,
				Quantile: sanitize(quantile, 0.05, 0.99),
				MinDelay: sanitize(minDelay, 1, 200),
			}
		}
		if faults {
			cfg.Fault = fault.Default()
			cfg.Fault.MTTF = 1500
			cfg.Fault.MTTR = 200
			cfg.Fault.DropProb = 0.05
		}
		if err := cfg.Validate(); err != nil {
			t.Skip()
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		if err := s.Audit(); err != nil {
			t.Fatalf("auditor violation: %v", err)
		}
		tot := s.overloadTotals()
		if tot.Armed != tot.Met+tot.Missed+tot.Cancelled+uint64(tot.Pending) {
			t.Fatalf("deadline ledger leaked: %+v", tot)
		}
		if tot.HedgesLaunched != tot.HedgeWins+tot.HedgeCancelled+uint64(tot.HedgePending) {
			t.Fatalf("hedge ledger leaked: %+v", tot)
		}
		if s.hedge != nil {
			if s.hedge.activeClones != len(s.hedge.byClone) {
				t.Fatalf("clone census %d != byClone size %d",
					s.hedge.activeClones, len(s.hedge.byClone))
			}
			for primary, race := range s.hedge.races {
				if race.primary != primary {
					t.Fatal("race index corrupted")
				}
			}
		}
		if s.dl != nil && len(s.dl.timers) != tot.Pending {
			t.Fatalf("timer map %d != pending %d", len(s.dl.timers), tot.Pending)
		}
	})
}
