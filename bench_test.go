// Benchmarks that regenerate every table of the paper's evaluation, one
// bench per table. Each iteration executes the table's full harness at a
// reduced (benchmark-sized) replication budget and reports the table's
// headline quantity as a custom metric, so `go test -bench=.` both times
// the harnesses and re-derives the paper's numbers. cmd/dqtables runs the
// same harnesses at full budget.
package dqalloc

import (
	"testing"

	"dqalloc/internal/dquery"
	"dqalloc/internal/exper"
	"dqalloc/internal/policy"
	"dqalloc/internal/system"
)

// benchRunner is the replication budget used by the table benchmarks.
func benchRunner() exper.Runner {
	return exper.Runner{Reps: 1, BaseSeed: 1, Warmup: 1000, Measure: 10000}
}

// BenchmarkTable5WIF regenerates Table 5 (Waiting Improvement Factor
// grid, exact MVA) and reports the grid's mean WIF.
func BenchmarkTable5WIF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table5()
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, row := range rows {
			for _, c := range row.Cells {
				sum += c.Value
				n++
			}
		}
		b.ReportMetric(sum/float64(n), "meanWIF")
	}
}

// BenchmarkTable6FIF regenerates Table 6 (Fairness Improvement Factor
// grid, exact MVA) and reports the grid's mean FIF.
func BenchmarkTable6FIF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table6()
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, row := range rows {
			for _, c := range row.Cells {
				sum += c.Value
				n++
			}
		}
		b.ReportMetric(sum/float64(n), "meanFIF")
	}
}

// BenchmarkTable8ThinkTime regenerates Table 8 (waiting time vs think
// time, four policies) and reports LERT's improvement over LOCAL at the
// default think time 350.
func BenchmarkTable8ThinkTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table8(benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.X == 350 {
				b.ReportMetric(row.VsLocal[2], "LERTimpr%")
			}
		}
	}
}

// BenchmarkTableMsgLength regenerates the msg_length = 2.0 prose variant
// and reports BNQRD's and LERT's improvements over BNQ.
func BenchmarkTableMsgLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := exper.TableMsgLength(benchRunner(), 2.0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.VsBNQRD, "BNQRDvsBNQ%")
		b.ReportMetric(row.VsLERT, "LERTvsBNQ%")
	}
}

// BenchmarkTable9MPL regenerates Table 9 (waiting time vs mpl) and
// reports LERT's improvement over LOCAL at mpl 20.
func BenchmarkTable9MPL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table9(benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.X == 20 {
				b.ReportMetric(row.VsLocal[2], "LERTimpr%")
			}
		}
	}
}

// BenchmarkTable10Capacity regenerates Table 10 (maximum mpl vs response
// time target) and reports LERT's capacity gain at the 40-unit target.
func BenchmarkTable10Capacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table10(benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		first := rows[0]
		if first.MaxLocal > 0 {
			gain := float64(first.MaxLERT-first.MaxLocal) / float64(first.MaxLocal) * 100
			b.ReportMetric(gain, "capGain%")
		}
	}
}

// BenchmarkTable11Sites regenerates Table 11 (waiting time and subnet
// utilization vs number of sites) and reports the site count at which
// LERT's improvement peaks.
func BenchmarkTable11Sites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table11(benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		best := rows[0]
		for _, row := range rows[1:] {
			if row.ImprLERT > best.ImprLERT {
				best = row
			}
		}
		b.ReportMetric(float64(best.NumSites), "peakSites")
		b.ReportMetric(best.ImprLERT, "peakImpr%")
	}
}

// BenchmarkTable12Fairness regenerates Table 12 (W̄ and F vs
// class_io_prob) and reports LERT's fairness improvement at p_io = 0.3.
func BenchmarkTable12Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table12(benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].FImprLERT, "FimprLERT%")
	}
}

// BenchmarkSimulationThroughput times the raw simulator on the default
// configuration — events processed per simulated-time horizon.
func BenchmarkSimulationThroughput(b *testing.B) {
	cfg := system.Default()
	cfg.Warmup = 500
	cfg.Measure = 5000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		sys, err := system.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sys.Run()
	}
}

// BenchmarkAblationStaleness compares LERT under perfect vs periodically
// broadcast load information (the Section 4.4 future-work dimension).
func BenchmarkAblationStaleness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		fresh := system.Default()
		fresh.PolicyKind = policy.LERT
		aggF, err := r.Run(fresh)
		if err != nil {
			b.Fatal(err)
		}
		stale := fresh
		stale.InfoMode = system.InfoPeriodic
		stale.InfoPeriod = 100
		aggS, err := r.Run(stale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(aggF.MeanWait.Mean, "Wfresh")
		b.ReportMetric(aggS.MeanWait.Mean, "Wstale100")
	}
}

// BenchmarkAblationReplication sweeps copies-per-object on the partially
// replicated extension and reports LERT's improvement over the static
// nearest-copy allocation at full replication.
func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.ReplicationSweep(benchRunner(), 60)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Impr, "fullReplImpr%")
		b.ReportMetric(rows[0].Impr, "oneCopyImpr%")
	}
}

// BenchmarkAblationMigration measures what mid-execution migration adds
// on top of LOCAL and LERT allocation.
func BenchmarkAblationMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.MigrationAblation(benchRunner(), []policy.Kind{policy.Local, policy.LERT})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Impr, "onLOCAL%")
		b.ReportMetric(rows[1].Impr, "onLERT%")
	}
}

// BenchmarkAblationProbes compares full-information LERT against its
// probing variant with 1 and 2 probes per decision.
func BenchmarkAblationProbes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.ProbeSweep(benchRunner(), []int{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].WProbeRT, "Wprobe1")
		b.ReportMetric(rows[1].WProbeRT, "Wprobe2")
	}
}

// BenchmarkJoinHotSpot runs the distributed-join extension's hot-spot
// scenario and reports the static-vs-dynamic response ratio.
func BenchmarkJoinHotSpot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var resp [2]float64
		for j, kind := range []dquery.StrategyKind{dquery.Static, dquery.Dynamic} {
			cfg := dquery.Default()
			cfg.Strategy = kind
			cfg.HotProb = 0.9
			cfg.Warmup = 1000
			cfg.Measure = 10000
			sys, err := dquery.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			resp[j] = sys.Run().MeanResponse
		}
		if resp[1] > 0 {
			b.ReportMetric(resp[0]/resp[1], "static/dynamic")
		}
	}
}

// BenchmarkAblationSensitivity runs the imperfect-information
// sensitivity harness (EXPERIMENTS.md "Imperfect information") at
// benchmark budget and reports LERT's waiting time under exact vs
// sigma-1 estimation error.
func BenchmarkAblationSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.SensitivitySweep(benchRunner(),
			[]policy.Kind{policy.BNQ, policy.LERT},
			[]float64{0, 1}, []float64{40}, []float64{0.3})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Policy == "LERT" && row.Axis == "noise" {
				switch row.Value {
				case 0:
					b.ReportMetric(row.MeanWait, "Wexact")
				case 1:
					b.ReportMetric(row.MeanWait, "Wsigma1")
				}
			}
		}
	}
}

// BenchmarkAblationEstimates compares LERT with class-mean estimates
// against the exact-demand oracle (the Section 1.2.2 knowledge model).
func BenchmarkAblationEstimates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		mean := system.Default()
		aggMean, err := r.Run(mean)
		if err != nil {
			b.Fatal(err)
		}
		oracle := mean
		oracle.EstimateMode = EstimateActual
		aggOracle, err := r.Run(oracle)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(aggMean.MeanWait.Mean, "WclassMean")
		b.ReportMetric(aggOracle.MeanWait.Mean, "Woracle")
	}
}
