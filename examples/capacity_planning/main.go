// capacity_planning answers the paper's Table-10 question for an
// operator: "how many terminals per site can the system sustain while
// keeping expected response time under a target?" — with and without
// dynamic allocation. Dynamic allocation (LERT) raises the supportable
// multiprogramming level by 20–50%, i.e. capacity can be added without
// new hardware.
package main

import (
	"fmt"
	"log"

	"dqalloc"
	"dqalloc/internal/exper"
)

func main() {
	runner := exper.Runner{Reps: 2, BaseSeed: 7, Warmup: 2000, Measure: 20000}
	rows, err := exper.Table10(runner)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("max terminals/site meeting a response-time target")
	fmt.Println("target   LOCAL   LERT   gain")
	for _, row := range rows {
		gain := "-"
		if row.MaxLocal > 0 {
			gain = fmt.Sprintf("%+.0f%%", float64(row.MaxLERT-row.MaxLocal)/float64(row.MaxLocal)*100)
		}
		fmt.Printf("%6.0f   %5d   %4d   %s\n", row.Target, row.MaxLocal, row.MaxLERT, gain)
	}

	// Spot-check the chosen operating point: verify the response time the
	// search promised actually holds at the LERT capacity.
	target := rows[0]
	cfg := dqalloc.DefaultConfig()
	cfg.MPL = target.MaxLERT
	cfg.PolicyKind = dqalloc.LERT
	cfg.Warmup = 2000
	cfg.Measure = 20000
	res, err := dqalloc.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspot check: mpl=%d under LERT -> mean response %.1f (target ≤ %.0f)\n",
		target.MaxLERT, res.MeanResponse, target.Target)
}
