// distributed_join demonstrates the paper's "eventual goal" (Section
// 6.2): dynamic allocation inside an actual distributed query processing
// pipeline. Queries join two partially replicated relations via two scan
// subqueries, data moves, and a join subquery. The classic static
// optimizer always picks the same plan for the same query — so a hot
// query convoys on a single site (the Section-1.1 failure) — while the
// dynamic planner spreads subqueries using load information.
package main

import (
	"fmt"
	"log"

	"dqalloc/internal/dquery"
)

func main() {
	fmt.Println("hot%  strategy   mean resp     p95   hottest-CPU  mean-CPU  shipped")
	for _, hot := range []float64{0.0, 0.5, 0.9} {
		for _, kind := range []dquery.StrategyKind{dquery.Static, dquery.Dynamic} {
			cfg := dquery.Default()
			cfg.Strategy = kind
			cfg.HotProb = hot
			cfg.Seed = 11
			sys, err := dquery.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			r := sys.Run()
			fmt.Printf("%4.0f  %-8s %10.1f %8.1f %12.2f %9.2f %8.0f\n",
				hot*100, r.Strategy, r.MeanResponse, r.P95Response,
				r.MaxCPUUtil, r.CPUUtil, r.PagesShipped)
		}
		fmt.Println()
	}
	fmt.Println("hottest-CPU >> mean-CPU under STATIC at 90% hot = the convoy the")
	fmt.Println("paper warns about: every instance of the hot query uses the same plan.")

	// The same pipeline generalizes to wider left-deep joins.
	fmt.Println("\n3-way joins (scan, scan, scan → join → join), 50% hot:")
	for _, kind := range []dquery.StrategyKind{dquery.Static, dquery.Dynamic} {
		cfg := dquery.Default()
		cfg.Strategy = kind
		cfg.RelationsPerQuery = 3
		cfg.HotProb = 0.5
		cfg.Seed = 11
		sys, err := dquery.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r := sys.Run()
		fmt.Printf("  %-8s mean resp %8.1f   p95 %8.1f   hottest CPU %.2f\n",
			r.Strategy, r.MeanResponse, r.P95Response, r.MaxCPUUtil)
	}
}
