// distributed_join demonstrates the paper's "eventual goal" (Section
// 6.2): dynamic allocation inside an actual distributed query processing
// pipeline. Queries are operator trees — two fragment scans feeding a
// join, sometimes topped by a filter — and the allocation policy places
// each operator with its own per-resource demands. The example compares
// the three placement modes of Config.Parallel:
//
//   - single:   the whole tree anchors at one policy-chosen site — the
//     static-plan convoy the paper warns about in Section 1.1.
//   - operator: each operator is placed independently; intermediate
//     results ship over the ring.
//   - dop:      the bottom join is additionally split
//     fragment-and-replicate across a cost-chosen set of sites.
//
// On a disk-bound workload of large join queries, spreading and
// splitting plans buys a lower mean response time, paid for in ring
// traffic — both visible in the printed columns.
package main

import (
	"fmt"
	"log"

	"dqalloc"
)

func main() {
	// A handful of large scan-heavy queries per site instead of many
	// small ones: at low multiprogramming a query's makespan is bound by
	// its own serial page loop, the regime where intra-query parallelism
	// pays.
	base := dqalloc.DefaultConfig()
	base.PolicyKind = dqalloc.LERT
	base.MPL = 2
	base.ThinkTime = 150
	base.Classes = []dqalloc.Class{
		{Name: "io", PageCPUTime: 0.05, NumReads: 48, MsgLength: 1},
		{Name: "cpu", PageCPUTime: 0.4, NumReads: 32, MsgLength: 1},
	}
	par := dqalloc.DefaultParallelConfig()
	par.JoinProb = 1 // every query becomes a join tree
	par.SelScan = 0.1
	par.ShipBytesPerPage = 0.02
	par.SplitOverhead = 0.5
	base.Parallel = par
	base.Seed = 11
	base.Audit = true

	fmt.Println("mode      mean resp      p95   wide%  inter-bytes  subnet  disk")
	for _, mode := range []dqalloc.ParallelMode{
		dqalloc.ParallelSingle, dqalloc.ParallelOperator, dqalloc.ParallelDOP,
	} {
		cfg := base
		cfg.Parallel.Mode = mode
		res, err := dqalloc.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var wide uint64
		for k := 1; k < len(res.DOPHist); k++ {
			wide += res.DOPHist[k]
		}
		widePct := 0.0
		if res.ParallelQueries > 0 {
			widePct = 100 * float64(wide) / float64(res.ParallelQueries)
		}
		fmt.Printf("%-8s %10.1f %8.1f %6.1f %12.0f %7.3f %5.3f\n",
			mode, res.MeanResponse, res.RespQuantiles.P95, widePct,
			res.IntermediateBytes, res.SubnetUtil, res.DiskUtil)
	}
	fmt.Println("\nsingle-site plans convoy on one site's disks; operator placement")
	fmt.Println("pipelines the tree across sites, and dop splits the bottom join —")
	fmt.Println("response drops while ring traffic (inter-bytes, subnet) rises.")
}
