// limited_info asks the question the paper defers in Section 4.4 from
// the opposite direction: instead of broadcasting global load state, how
// far do a handful of random probes per decision go? It compares
// full-information LERT against probing variants and the classic
// threshold policy, which needs no load exchange at all.
package main

import (
	"fmt"
	"log"

	"dqalloc"
	"dqalloc/internal/policy"
	"dqalloc/internal/rng"
)

func main() {
	const (
		warmup  = 3000
		measure = 30000
		reps    = 3
	)

	meanWait := func(cfg dqalloc.Config) float64 {
		cfg.Warmup = warmup
		cfg.Measure = measure
		runs, err := dqalloc.Replications(cfg, reps)
		if err != nil {
			log.Fatal(err)
		}
		sum := 0.0
		for _, r := range runs {
			sum += r.MeanWait
		}
		return sum / float64(len(runs))
	}

	local := dqalloc.DefaultConfig()
	local.PolicyKind = dqalloc.Local
	wLocal := meanWait(local)

	full := dqalloc.DefaultConfig()
	full.PolicyKind = dqalloc.LERT
	wFull := meanWait(full)

	fmt.Printf("no information  (LOCAL):          W̄ = %6.2f\n", wLocal)
	fmt.Printf("full information (LERT):          W̄ = %6.2f\n\n", wFull)

	gain := wLocal - wFull
	for _, k := range []int{1, 2, 3} {
		cfg := dqalloc.DefaultConfig()
		probe, err := policy.NewProbeKind(policy.LERT, k, rng.NewStream(uint64(40+k)))
		if err != nil {
			log.Fatal(err)
		}
		cfg.CustomPolicy = probe
		w := meanWait(cfg)
		fmt.Printf("%-18s W̄ = %6.2f  (%3.0f%% of the full-information gain)\n",
			probe.Name()+":", w, (wLocal-w)/gain*100)
	}

	cfg := dqalloc.DefaultConfig()
	thresh, err := policy.NewThreshold(3, 2, rng.NewStream(50))
	if err != nil {
		log.Fatal(err)
	}
	cfg.CustomPolicy = thresh
	w := meanWait(cfg)
	fmt.Printf("%-18s W̄ = %6.2f  (%3.0f%% of the full-information gain, zero exchange)\n",
		thresh.Name()+":", w, (wLocal-w)/gain*100)
}
