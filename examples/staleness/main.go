// staleness explores the question the paper defers to future work
// (Section 4.4): how fresh does load information have to be for the
// dynamic policies to keep their advantage? It sweeps the broadcast
// period of the load-information exchange and reports how LERT and BNQ
// degrade toward (and past) the LOCAL baseline.
package main

import (
	"fmt"
	"log"

	"dqalloc"
)

func main() {
	const (
		reps    = 3
		warmup  = 3000
		measure = 30000
	)

	meanWait := func(cfg dqalloc.Config) float64 {
		cfg.Warmup = warmup
		cfg.Measure = measure
		runs, err := dqalloc.Replications(cfg, reps)
		if err != nil {
			log.Fatal(err)
		}
		sum := 0.0
		for _, r := range runs {
			sum += r.MeanWait
		}
		return sum / float64(len(runs))
	}

	base := dqalloc.DefaultConfig()
	base.PolicyKind = dqalloc.Local
	wLocal := meanWait(base)
	fmt.Printf("LOCAL baseline: W̄ = %.2f\n\n", wLocal)
	fmt.Println("info age      BNQ W̄   (vs LOCAL)   LERT W̄   (vs LOCAL)")

	for _, period := range []float64{0, 10, 50, 100, 200, 400, 800} {
		label := "perfect"
		if period > 0 {
			label = fmt.Sprintf("T=%.0f", period)
		}
		line := fmt.Sprintf("%-10s", label)
		for _, kind := range []dqalloc.PolicyKind{dqalloc.BNQ, dqalloc.LERT} {
			cfg := dqalloc.DefaultConfig()
			cfg.PolicyKind = kind
			if period > 0 {
				cfg.InfoMode = dqalloc.InfoPeriodic
				cfg.InfoPeriod = period
			}
			w := meanWait(cfg)
			line += fmt.Sprintf("  %7.2f  (%+6.1f%%)", w, (wLocal-w)/wLocal*100)
		}
		fmt.Println(line)
	}
	fmt.Println("\npositive percentages = still better than processing locally")
}
