// Quickstart: simulate the paper's baseline system under the LERT
// allocation policy and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"dqalloc"
)

func main() {
	// DefaultConfig is the paper's Table-7 baseline: 6 sites, 2 disks per
	// site, 20 terminals per site thinking for 350 time units on average,
	// and a 50/50 mix of I/O-bound and CPU-bound queries that each read
	// ~20 pages.
	cfg := dqalloc.DefaultConfig()
	cfg.PolicyKind = dqalloc.LERT
	cfg.Seed = 42

	res, err := dqalloc.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy %s completed %d queries over %.0f time units\n",
		res.Policy, res.Completed, res.MeasuredTime)
	fmt.Printf("mean waiting time W̄ = %.2f (response %.2f)\n",
		res.MeanWait, res.MeanResponse)
	fmt.Printf("fairness F = %+.4f (Ŵ_io − Ŵ_cpu)\n", res.Fairness)
	fmt.Printf("ρ_cpu = %.2f  ρ_disk = %.2f  subnet = %.2f\n",
		res.CPUUtil, res.DiskUtil, res.SubnetUtil)
	fmt.Printf("%.0f%% of queries executed remotely\n", res.RemoteFrac*100)
	for _, c := range res.ByClass {
		fmt.Printf("  %-3s class: W̄ = %6.2f over %d queries (normalized %.3f)\n",
			c.Name, c.MeanWait, c.Completed, c.NormWait)
	}
}
