// optimal_study walks through the paper's Section-3 analysis for one
// arrival: it shows why "balance the number of queries" is suboptimal in
// a multi-class system, by evaluating every candidate allocation of an
// I/O-bound arrival with exact mean value analysis.
package main

import (
	"fmt"
	"log"

	"dqalloc/internal/optimal"
)

func main() {
	// Two I/O-bound queries at sites 1-2, two CPU-bound at sites 3-4.
	// A new I/O-bound query arrives. Every site holds one query, so a
	// count-balancing allocator is indifferent — but the sites are not
	// equivalent: co-locating with a CPU-bound query means competing for
	// different resources.
	p := optimal.PaperParams(0.05, 1.0)
	l := optimal.LoadMatrix{
		{1, 1, 0, 0}, // io-bound queries per site
		{0, 0, 1, 1}, // cpu-bound queries per site
	}
	a, err := optimal.Evaluate(p, l, 0 /* io-bound arrival */)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("arrival: io-bound query; every site already holds one query")
	fmt.Println("site  neighbor    wait/cycle  system unfairness")
	names := []string{"io-bound", "io-bound", "cpu-bound", "cpu-bound"}
	for i, o := range a.Outcomes {
		fmt.Printf("  %d   %-9s  %10.4f  %12.4f\n", o.Site+1, names[i], o.ArrivalWait, o.Fairness)
	}
	fmt.Printf("\nBNQ is indifferent among sites %v; the optimum is site %d.\n",
		add1(a.BNQSites), a.OptWaitSite+1)
	fmt.Printf("knowing resource demands cuts expected waiting by %.0f%%  (WIF = %.2f)\n",
		a.WIF()*100, a.WIF())
	fmt.Printf("and the class bias by %.0f%%  (FIF = %.2f)\n", a.FIF()*100, a.FIF())

	// The same effect across the paper's demand-ratio grid.
	fmt.Println("\nWIF for this arrival across the paper's cpu1/cpu2 grid:")
	for _, ratio := range optimal.PaperCPURatios() {
		g, err := optimal.Evaluate(optimal.PaperParams(ratio.CPU1, ratio.CPU2), l, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s WIF = %.2f\n", ratio.Label(), g.WIF())
	}
}

func add1(sites []int) []int {
	out := make([]int, len(sites))
	for i, s := range sites {
		out[i] = s + 1
	}
	return out
}
