// heuristics_compare reproduces the core of the paper's Section 5
// comparison: the four allocation strategies (LOCAL, BNQ, BNQRD, LERT)
// on the same workload with common random numbers, at three load levels.
// It prints the paper's headline ordering — information-based policies
// (BNQRD, LERT) beat the count-based BNQ, which beats processing locally.
package main

import (
	"fmt"
	"log"

	"dqalloc"
	"dqalloc/internal/stats"
)

func main() {
	policies := []dqalloc.PolicyKind{dqalloc.Local, dqalloc.BNQ, dqalloc.BNQRD, dqalloc.LERT}
	const reps = 3

	for _, think := range []float64{150, 350, 450} {
		fmt.Printf("think_time = %.0f\n", think)
		var wLocal float64
		for _, kind := range policies {
			cfg := dqalloc.DefaultConfig()
			cfg.ThinkTime = think
			cfg.PolicyKind = kind
			cfg.Warmup = 3000
			cfg.Measure = 30000

			runs, err := dqalloc.Replications(cfg, reps)
			if err != nil {
				log.Fatal(err)
			}
			waits := make([]float64, len(runs))
			for i, r := range runs {
				waits[i] = r.MeanWait
			}
			ci := stats.MeanCI(waits)
			if kind == dqalloc.Local {
				wLocal = ci.Mean
				fmt.Printf("  %-6s W̄ = %6.2f ± %.2f (baseline)\n", kind, ci.Mean, ci.HalfWide)
				continue
			}
			impr := (wLocal - ci.Mean) / wLocal * 100
			fmt.Printf("  %-6s W̄ = %6.2f ± %.2f (%5.1f%% better than LOCAL)\n",
				kind, ci.Mean, ci.HalfWide, impr)
		}
		fmt.Println()
	}
}
