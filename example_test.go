package dqalloc_test

import (
	"fmt"
	"log"

	"dqalloc"
)

// Example runs the paper's baseline system under the count-balancing
// BNQ policy. Runs are bit-deterministic for a given seed (the library
// ships its own xoshiro256++ streams), so the output below is stable
// across platforms and Go releases.
func Example() {
	cfg := dqalloc.DefaultConfig()
	cfg.PolicyKind = dqalloc.BNQ
	cfg.Seed = 7
	cfg.Warmup = 1000
	cfg.Measure = 10000

	res, err := dqalloc.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy=%s completed=%d\n", res.Policy, res.Completed)
	fmt.Printf("W=%.2f rho_c=%.2f\n", res.MeanWait, res.CPUUtil)
	// Output:
	// policy=BNQ completed=3032
	// W=12.61 rho_c=0.54
}
