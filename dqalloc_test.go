package dqalloc

import "testing"

func TestRunFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Warmup = 500
	cfg.Measure = 5000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "LERT" || res.Completed == 0 || res.MeanWait <= 0 {
		t.Errorf("unexpected results: %+v", res)
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 0
	if _, err := Run(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestReplicationsVarySeeds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Warmup = 500
	cfg.Measure = 4000
	rs, err := Replications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3", len(rs))
	}
	if rs[0].Seed == rs[1].Seed || rs[0].MeanWait == rs[1].MeanWait {
		t.Error("replications did not vary seeds")
	}
}

func TestReplicationsRejectsZero(t *testing.T) {
	if _, err := Replications(DefaultConfig(), 0); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestRunFacadeWithFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Warmup = 500
	cfg.Measure = 5000
	cfg.Audit = true
	cfg.Fault = DefaultFaultConfig()
	cfg.Fault.MTTF = 1500
	cfg.Fault.MTTR = 300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SiteCrashes == 0 {
		t.Error("no site crashes with MTTF 1500")
	}
	if res.Availability <= 0 || res.Availability >= 1 {
		t.Errorf("availability = %v, want in (0,1)", res.Availability)
	}
}

func TestRunFacadeGrayFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Warmup = 500
	cfg.Measure = 5000
	cfg.Audit = true
	cfg.Fault = DefaultSlowFaultConfig()
	cfg.Fault.SlowMTTF = 1000
	cfg.Fault.SlowMTTR = 300
	cfg.Suspect = DefaultSuspectConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowEpisodes == 0 {
		t.Error("no fail-slow episodes with SlowMTTF 1000")
	}
	if res.SiteCrashes != 0 {
		t.Errorf("%d crashes in a pure gray-failure config", res.SiteCrashes)
	}
	if res.SuspectTransfers == 0 {
		t.Error("detector never steered a query off a suspect site")
	}
}

func TestRunFacadeImperfectInformation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PolicyKind = BNQ
	cfg.InfoMode = InfoPeriodic
	cfg.InfoPeriod = 40
	cfg.Warmup = 500
	cfg.Measure = 5000
	cfg.Audit = true
	cfg.Noise = DefaultNoiseConfig()
	cfg.Tuning = Tuning{Hysteresis: 0.1, PowerK: 2, RandomTies: true}
	cfg.Admission = DefaultAdmissionConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Error("no completions under imperfect information")
	}
	if res.EstReadsErr <= 0 || res.EstCPUErr <= 0 {
		t.Errorf("noise injection left no realized estimate error: reads=%v cpu=%v",
			res.EstReadsErr, res.EstCPUErr)
	}
}

func TestRunFacadeOverload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Warmup = 500
	cfg.Measure = 5000
	cfg.Audit = true
	cfg.Arrival = DefaultMMPPArrivals(0.3)
	cfg.Deadline = DefaultDeadlineConfig()
	cfg.Hedge = DefaultHedgeConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OpenArrivals == 0 || res.Completed == 0 {
		t.Errorf("open arrivals did not drive the system: %+v", res)
	}
	if res.RespQuantiles.P50 <= 0 || res.RespQuantiles.P99 < res.RespQuantiles.P50 {
		t.Errorf("implausible quantiles: %+v", res.RespQuantiles)
	}
	if res.DeadlineMet == 0 {
		t.Error("no deadline outcomes recorded")
	}
}

func TestPolicyConstantsDistinct(t *testing.T) {
	kinds := []PolicyKind{Local, Random, BNQ, BNQRD, LERT}
	seen := make(map[PolicyKind]bool, len(kinds))
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate policy kind %v", k)
		}
		seen[k] = true
	}
}
