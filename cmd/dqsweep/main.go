// Command dqsweep sweeps one model parameter across a range for a set of
// policies and emits CSV, one row per (parameter value, policy) pair —
// the raw material for every curve in the paper and for new ones.
//
// Usage:
//
//	dqsweep -param think -from 150 -to 450 -step 50 -policies LOCAL,BNQ,LERT
//	dqsweep -param pio -from 0.3 -to 0.8 -step 0.1
//	dqsweep -param msg -from 0.5 -to 3 -step 0.5 -policies BNQ,BNQRD,LERT
//
// Parameters: think, mpl, sites, pio, msg, info-period, est-noise, hyst.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dqalloc/internal/exper"
	"dqalloc/internal/noise"
	"dqalloc/internal/policy"
	"dqalloc/internal/system"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dqsweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dqsweep", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		param    = fs.String("param", "think", "swept parameter: think, mpl, sites, pio, msg, info-period, est-noise, hyst")
		from     = fs.Float64("from", 150, "first value")
		to       = fs.Float64("to", 450, "last value (inclusive)")
		step     = fs.Float64("step", 50, "increment")
		policies = fs.String("policies", "LOCAL,BNQ,BNQRD,LERT", "comma-separated policy list")
		reps     = fs.Int("reps", 3, "replications per point")
		warmup   = fs.Float64("warmup", 3000, "warmup horizon")
		measure  = fs.Float64("measure", 30000, "measured horizon")
		seed     = fs.Uint64("seed", 1, "base seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *step <= 0 {
		return fmt.Errorf("step must be positive")
	}

	kinds, err := parsePolicies(*policies)
	if err != nil {
		return err
	}
	apply, err := setter(*param)
	if err != nil {
		return err
	}
	runner := exper.Runner{Reps: *reps, BaseSeed: *seed, Warmup: *warmup, Measure: *measure}

	fmt.Fprintln(w, "param,value,policy,mean_wait,wait_ci_half,mean_response,fairness,cpu_util,disk_util,subnet_util,throughput,remote_frac")
	for v := *from; v <= *to+1e-9; v += *step {
		cfg := system.Default()
		if err := apply(&cfg, v); err != nil {
			return err
		}
		for _, kind := range kinds {
			// SIGINT/SIGTERM: completed rows are already flushed — stop
			// before the next replication and exit non-zero.
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("interrupted: partial sweep emitted")
			}
			cfg.PolicyKind = kind
			agg, err := runner.Run(cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s,%g,%s,%.4f,%.4f,%.4f,%.5f,%.4f,%.4f,%.4f,%.5f,%.4f\n",
				*param, v, agg.Policy,
				agg.MeanWait.Mean, agg.MeanWait.HalfWide, agg.MeanResponse,
				agg.Fairness.Mean, agg.CPUUtil, agg.DiskUtil, agg.SubnetUtil,
				agg.Throughput, agg.RemoteFrac)
		}
	}
	return nil
}

// setter returns a function applying the swept value to a config.
func setter(param string) (func(*system.Config, float64) error, error) {
	switch param {
	case "think":
		return func(c *system.Config, v float64) error {
			c.ThinkTime = v
			return nil
		}, nil
	case "mpl":
		return func(c *system.Config, v float64) error {
			c.MPL = int(math.Round(v))
			return nil
		}, nil
	case "sites":
		return func(c *system.Config, v float64) error {
			c.NumSites = int(math.Round(v))
			return nil
		}, nil
	case "pio":
		return func(c *system.Config, v float64) error {
			if v < 0 || v > 1 {
				return fmt.Errorf("pio %v outside [0,1]", v)
			}
			c.ClassProbs = []float64{v, 1 - v}
			return nil
		}, nil
	case "msg":
		return func(c *system.Config, v float64) error {
			for i := range c.Classes {
				c.Classes[i].MsgLength = v
			}
			return nil
		}, nil
	case "info-period":
		return func(c *system.Config, v float64) error {
			if v <= 0 {
				c.InfoMode = system.InfoPerfect
				c.InfoPeriod = 0
				return nil
			}
			c.InfoMode = system.InfoPeriodic
			c.InfoPeriod = v
			return nil
		}, nil
	case "est-noise":
		return func(c *system.Config, v float64) error {
			if v < 0 {
				return fmt.Errorf("est-noise %v is negative", v)
			}
			if v == 0 {
				c.Noise = noise.Config{}
				return nil
			}
			c.Noise = noise.Config{Enabled: true, Dist: noise.Lognormal, ReadsSigma: v, CPUSigma: v}
			return nil
		}, nil
	case "hyst":
		return func(c *system.Config, v float64) error {
			if v < 0 || v >= 1 {
				return fmt.Errorf("hyst %v outside [0,1)", v)
			}
			c.Tuning = policy.Tuning{Hysteresis: v}
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown parameter %q", param)
	}
}

func parsePolicies(s string) ([]policy.Kind, error) {
	var kinds []policy.Kind
	for _, name := range strings.Split(s, ",") {
		switch strings.ToUpper(strings.TrimSpace(name)) {
		case "LOCAL":
			kinds = append(kinds, policy.Local)
		case "RANDOM":
			kinds = append(kinds, policy.Random)
		case "BNQ":
			kinds = append(kinds, policy.BNQ)
		case "BNQRD":
			kinds = append(kinds, policy.BNQRD)
		case "LERT":
			kinds = append(kinds, policy.LERT)
		case "WORK":
			kinds = append(kinds, policy.Work)
		case "":
		default:
			return nil, fmt.Errorf("unknown policy %q", name)
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no policies given")
	}
	return kinds, nil
}
