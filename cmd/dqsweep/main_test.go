package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"dqalloc/internal/policy"
	"dqalloc/internal/system"
)

func TestSetterKnownParams(t *testing.T) {
	tests := []struct {
		param string
		value float64
		check func(system.Config) bool
	}{
		{param: "think", value: 200, check: func(c system.Config) bool { return c.ThinkTime == 200 }},
		{param: "mpl", value: 25, check: func(c system.Config) bool { return c.MPL == 25 }},
		{param: "sites", value: 4, check: func(c system.Config) bool { return c.NumSites == 4 }},
		{param: "pio", value: 0.3, check: func(c system.Config) bool { return c.ClassProbs[0] == 0.3 }},
		{param: "msg", value: 2, check: func(c system.Config) bool { return c.Classes[0].MsgLength == 2 }},
		{param: "info-period", value: 50, check: func(c system.Config) bool {
			return c.InfoMode == system.InfoPeriodic && c.InfoPeriod == 50
		}},
		{param: "info-period", value: 0, check: func(c system.Config) bool {
			return c.InfoMode == system.InfoPerfect
		}},
		{param: "est-noise", value: 0.5, check: func(c system.Config) bool {
			return c.Noise.Enabled && c.Noise.ReadsSigma == 0.5 && c.Noise.CPUSigma == 0.5
		}},
		{param: "est-noise", value: 0, check: func(c system.Config) bool {
			return !c.Noise.Enabled
		}},
		{param: "hyst", value: 0.2, check: func(c system.Config) bool {
			return c.Tuning.Hysteresis == 0.2
		}},
	}
	for _, tt := range tests {
		apply, err := setter(tt.param)
		if err != nil {
			t.Fatalf("setter(%q): %v", tt.param, err)
		}
		cfg := system.Default()
		if err := apply(&cfg, tt.value); err != nil {
			t.Fatalf("apply %q=%v: %v", tt.param, tt.value, err)
		}
		if !tt.check(cfg) {
			t.Errorf("apply %q=%v did not take effect", tt.param, tt.value)
		}
	}
}

func TestSetterErrors(t *testing.T) {
	if _, err := setter("bogus"); err == nil {
		t.Error("unknown parameter accepted")
	}
	apply, err := setter("pio")
	if err != nil {
		t.Fatal(err)
	}
	cfg := system.Default()
	if err := apply(&cfg, 1.5); err == nil {
		t.Error("pio > 1 accepted")
	}
	for param, bad := range map[string]float64{"est-noise": -0.5, "hyst": 1} {
		apply, err := setter(param)
		if err != nil {
			t.Fatal(err)
		}
		if err := apply(&cfg, bad); err == nil {
			t.Errorf("%s = %v accepted", param, bad)
		}
	}
}

func TestParsePolicies(t *testing.T) {
	kinds, err := parsePolicies("local, BNQ ,lert")
	if err != nil {
		t.Fatal(err)
	}
	want := []policy.Kind{policy.Local, policy.BNQ, policy.LERT}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if _, err := parsePolicies("nothing-real"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := parsePolicies(""); err == nil {
		t.Error("empty list accepted")
	}
}

func TestRunSweepSmoke(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	err := run(ctx, []string{
		"-param", "think", "-from", "300", "-to", "350", "-step", "50",
		"-policies", "LOCAL", "-reps", "1", "-warmup", "200", "-measure", "1500",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("sweep emitted %d lines, want header + 2 rows:\n%s", lines, buf.String())
	}
	err = run(ctx, []string{
		"-param", "est-noise", "-from", "0", "-to", "0.5", "-step", "0.5",
		"-policies", "LERT", "-reps", "1", "-warmup", "200", "-measure", "1500",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"-step", "0"}, &buf); err == nil {
		t.Error("zero step accepted")
	}
}

// TestRunSweepInterrupted: a cancelled context stops the sweep before
// the next replication, keeps the rows already emitted, and returns a
// non-zero (error) status.
func TestRunSweepInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, []string{
		"-param", "think", "-from", "300", "-to", "400", "-step", "50",
		"-policies", "LOCAL,LERT", "-reps", "1", "-warmup", "200", "-measure", "1500",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("run = %v, want interrupted error", err)
	}
	if !strings.HasPrefix(buf.String(), "param,value,policy,") {
		t.Errorf("header not flushed before interrupt:\n%s", buf.String())
	}
}
