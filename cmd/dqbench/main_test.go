package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunKernelSuite exercises the whole pipeline — flag parsing, one
// real benchmark, JSON encoding — on the cheapest suite, and validates
// the report the way the CI smoke job does.
func TestRunKernelSuite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-suite", "kernel", "-label", "unit test", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if !rep.Quick || rep.Label != "unit test" || rep.GoVersion == "" {
		t.Errorf("report header wrong: %+v", rep)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("kernel suite wrote %d results, want 1", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "kernel/churn/events=20000" {
		t.Errorf("result name = %q", r.Name)
	}
	if r.NsPerOp <= 0 || r.Iterations < 1 {
		t.Errorf("degenerate timing: %+v", r)
	}
	if r.EventsPerSec <= 0 {
		t.Errorf("events/sec = %v, want > 0", r.EventsPerSec)
	}
	if !bytes.Contains(buf.Bytes(), []byte("wrote ")) {
		t.Errorf("missing completion line in output:\n%s", buf.String())
	}
}

// TestRunOverloadSuite runs the audited overload benchmark end to end
// at quick horizons.
func TestRunOverloadSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run(context.Background(), []string{"-quick", "-suite", "overload", "-o", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "overload/LERT/mmpp" {
		t.Fatalf("unexpected results: %+v", rep.Results)
	}
	if rep.Results[0].EventsPerSec <= 0 {
		t.Errorf("events/sec = %v, want > 0", rep.Results[0].EventsPerSec)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-suite", "nope"}, io.Discard); err == nil {
		t.Error("unknown suite accepted")
	}
	if err := run(ctx, []string{"extra"}, io.Discard); err == nil {
		t.Error("stray positional argument accepted")
	}
	if err := run(ctx, []string{"-no-such-flag"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestRunInterruptedFlushesPartialReport is the SIGINT/SIGTERM contract:
// a cancelled context skips the remaining benchmarks but still writes a
// valid (possibly empty) report and exits non-zero.
func TestRunInterruptedFlushesPartialReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // "signal" arrives before the first layer
	err := run(ctx, []string{"-quick", "-suite", "kernel", "-o", path}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("run = %v, want interrupted error", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("partial report not written: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("partial report does not parse: %v", err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("cancelled run still produced results: %+v", rep.Results)
	}
}

// TestWriteFileAtomic checks the temp-and-rename discipline: content
// lands intact, an existing file is replaced, and no temp files remain.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := writeFileAtomic(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "new" {
		t.Fatalf("content = %q, %v; want \"new\"", data, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp residue left in %s: %v", dir, entries)
	}
}
