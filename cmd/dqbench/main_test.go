package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestRunKernelSuite exercises the whole pipeline — flag parsing, one
// real benchmark, JSON encoding — on the cheapest suite, and validates
// the report the way the CI smoke job does.
func TestRunKernelSuite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-suite", "kernel", "-label", "unit test", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if !rep.Quick || rep.Label != "unit test" || rep.GoVersion == "" {
		t.Errorf("report header wrong: %+v", rep)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("kernel suite wrote %d results, want 1", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "kernel/churn/events=20000" {
		t.Errorf("result name = %q", r.Name)
	}
	if r.NsPerOp <= 0 || r.Iterations < 1 {
		t.Errorf("degenerate timing: %+v", r)
	}
	if r.EventsPerSec <= 0 {
		t.Errorf("events/sec = %v, want > 0", r.EventsPerSec)
	}
	if !bytes.Contains(buf.Bytes(), []byte("wrote ")) {
		t.Errorf("missing completion line in output:\n%s", buf.String())
	}
}

// TestRunOverloadSuite runs the audited overload benchmark end to end
// at quick horizons.
func TestRunOverloadSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-suite", "overload", "-o", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "overload/LERT/mmpp" {
		t.Fatalf("unexpected results: %+v", rep.Results)
	}
	if rep.Results[0].EventsPerSec <= 0 {
		t.Errorf("events/sec = %v, want > 0", rep.Results[0].EventsPerSec)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-suite", "nope"}, io.Discard); err == nil {
		t.Error("unknown suite accepted")
	}
	if err := run([]string{"extra"}, io.Discard); err == nil {
		t.Error("stray positional argument accepted")
	}
	if err := run([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}
