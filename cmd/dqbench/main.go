// Command dqbench runs the repository's fixed performance suite and
// writes a machine-readable BENCH_<date>.json report.
//
// The suite has four layers:
//
//   - kernel/churn — a pure scheduler microbenchmark: a rolling window
//     of pending events where every fired event schedules a
//     replacement. This isolates the future-event-list (heap + free
//     list) cost from the model.
//   - macro/<POLICY>/sites=<n> — one full replication (build + run) of
//     the closed terminal model per allocation policy and site count,
//     the same shape as BenchmarkSimulationThroughput. events/sec here
//     is real kernel throughput under model weight.
//   - overload/LERT/mmpp — one audited replication with the overload
//     extensions on (bursty MMPP arrivals, deadlines, hedging), timing
//     the open-arrival hot path.
//   - table8 — the Table-8 reproduction harness end to end, the
//     heaviest composite workload in the repo.
//   - parallel/<POLICY>/sites=<n>/reps=<r>/workers=<w> — a sharded
//     replication batch on exper.Runner's worker pool: `reps`
//     independent replications spread over `workers` goroutines
//     (workers = GOMAXPROCS), reporting *aggregate* events/sec across
//     the whole batch. This is multi-core kernel throughput — each
//     worker owns its scheduler, so the number scales with cores until
//     memory bandwidth saturates.
//   - replication/LERT/rebuild — one audited replication with a partial
//     placement, aggressive site crashes and the self-healing replica
//     manager on, timing the rebuild/degraded-read hot path (crash
//     wipes, deficit timers, fragment shipments, availability
//     recounts).
//   - serve/LERT/decide — the live allocation service's decision loop:
//     a warmed serve.Core fed Report/Decide cycles, reported as
//     decisions/sec (the events_per_sec column counts decisions).
//
// Numbers come from testing.Benchmark, so ns/op, B/op and allocs/op
// mean exactly what `go test -bench` reports. The simulation inside
// each op is deterministic (fixed seed), so events/op — and therefore
// events/sec for a given wall time — is reproducible across runs.
//
// Usage:
//
//	dqbench [-quick] [-label note] [-o path] [-suite layer] [-sched impl]
//
// -quick shrinks horizons for CI smoke use; quick numbers are for
// "did it run, is throughput nonzero" checks, not for comparison
// against full-suite baselines. -sched selects the kernel's
// future-event list (calendar, the default, or heap, the reference
// implementation); both fire bit-identical event streams, so a heap
// report is a same-workload baseline for the calendar's numbers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"

	"dqalloc/internal/arrival"
	"dqalloc/internal/exper"
	"dqalloc/internal/fault"
	"dqalloc/internal/loadinfo"
	"dqalloc/internal/policy"
	"dqalloc/internal/replica"
	"dqalloc/internal/rng"
	"dqalloc/internal/serve"
	"dqalloc/internal/sim"
	"dqalloc/internal/system"
	"dqalloc/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dqbench:", err)
		os.Exit(1)
	}
}

// Report is the top-level JSON document.
type Report struct {
	// Date is the run date (UTC, YYYY-MM-DD); it also names the default
	// output file.
	Date string `json:"date"`
	// Label is free-form provenance (e.g. which tree was benchmarked).
	Label string `json:"label,omitempty"`
	// Quick marks reduced-horizon CI runs whose numbers must not be
	// compared against full-suite baselines.
	Quick bool `json:"quick"`
	// Scheduler is the kernel implementation every result in this report
	// ran on: "calendar" or "heap".
	Scheduler  string   `json:"scheduler"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// Result is one benchmark's measurements.
type Result struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocations per op, as in
	// `go test -benchmem`.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// EventsPerOp is the number of scheduler events one op fires
	// (deterministic for the fixed seed); zero where not applicable.
	EventsPerOp uint64 `json:"events_per_op,omitempty"`
	// EventsPerSec = EventsPerOp / (NsPerOp in seconds).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dqbench", flag.ContinueOnError)
	var (
		quick = fs.Bool("quick", false, "shrink horizons for CI smoke runs")
		label = fs.String("label", "", "free-form provenance note stored in the report")
		out   = fs.String("o", "", "output path (default BENCH_<date>.json)")
		suite = fs.String("suite", "all", "which layer to run: all, kernel, macro, table8, overload, grayfail, parallel, parallel-query, replication, or serve")
		sched = fs.String("sched", "calendar", "scheduler implementation: calendar or heap")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	impl, err := sim.ParseImpl(*sched)
	if err != nil {
		return err
	}

	all := *suite == "all"
	switch *suite {
	case "all", "kernel", "macro", "table8", "overload", "grayfail", "parallel", "parallel-query", "replication", "serve":
	default:
		return fmt.Errorf("unknown suite %q (want all, kernel, macro, table8, overload, grayfail, parallel, parallel-query, replication, or serve)", *suite)
	}

	rep := Report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Label:      *label,
		Quick:      *quick,
		Scheduler:  impl.String(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// SIGINT/SIGTERM between layers: stop benchmarking, but still flush
	// whatever completed into the report, then exit non-zero.
	if ctx.Err() == nil && (all || *suite == "kernel") {
		churn := 200_000
		if *quick {
			churn = 20_000
		}
		fmt.Fprintf(w, "kernel/churn (%d events/op, %s) ...\n", churn, impl)
		rep.Results = append(rep.Results, benchKernelChurn(impl, churn))
	}

	if ctx.Err() == nil && (all || *suite == "macro") {
		// One replication per policy and site count.
		measure := 5000.0
		if *quick {
			measure = 1500
		}
	macro:
		for _, kind := range []policy.Kind{policy.Local, policy.BNQ, policy.BNQRD, policy.LERT} {
			for _, sites := range []int{4, 8, 16} {
				if ctx.Err() != nil {
					break macro
				}
				r, err := benchMacro(impl, kind, sites, measure)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%s: %.0f ns/op, %d allocs/op, %.0f events/sec\n",
					r.Name, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
				rep.Results = append(rep.Results, r)
			}
		}
	}

	if ctx.Err() == nil && (all || *suite == "overload") {
		// Macro-style run with every overload subsystem enabled: bursty
		// MMPP arrivals, deadlines, hedging — the tail-robustness hot path.
		measure := 4000.0
		if *quick {
			measure = 1200
		}
		r, err := benchOverload(impl, measure)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %.0f ns/op, %d allocs/op, %.0f events/sec\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
		rep.Results = append(rep.Results, r)
	}

	if ctx.Err() == nil && (all || *suite == "grayfail") {
		// Gray-failure hot path: fail-slow episodes with rate rescaling,
		// ring brownouts, the suspicion detector and straggler hedging,
		// conservation auditors on.
		measure := 4000.0
		if *quick {
			measure = 1200
		}
		r, err := benchGrayFail(impl, measure)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %.0f ns/op, %d allocs/op, %.0f events/sec\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
		rep.Results = append(rep.Results, r)
	}

	if ctx.Err() == nil && (all || *suite == "replication") {
		// Self-healing hot path: crashes, rebuild shipments, degraded
		// reads and the replication-conservation auditor, all on.
		measure := 4000.0
		if *quick {
			measure = 1200
		}
		r, err := benchReplication(impl, measure)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %.0f ns/op, %d allocs/op, %.0f events/sec\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
		rep.Results = append(rep.Results, r)
	}

	if ctx.Err() == nil && (all || *suite == "parallel-query") {
		// Operator-tree hot path: every query a join plan, the bottom join
		// split fragment-and-replicate, operator auditors on.
		measure := 4000.0
		if *quick {
			measure = 1200
		}
		r, err := benchParallelQuery(impl, measure)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %.0f ns/op, %d allocs/op, %.0f events/sec\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
		rep.Results = append(rep.Results, r)
	}

	if ctx.Err() == nil && (all || *suite == "serve") {
		// The live allocation service's decision loop, in decisions/sec.
		decisions := 200_000
		if *quick {
			decisions = 20_000
		}
		r, err := benchServe(decisions)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %.0f ns/op, %d allocs/op, %.0f decisions/sec\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
		rep.Results = append(rep.Results, r)
	}

	if ctx.Err() == nil && (all || *suite == "table8") {
		// Composite: the Table-8 harness.
		runner := exper.Runner{Reps: 2, BaseSeed: 1, Warmup: 1000, Measure: 6000, Scheduler: impl}
		if *quick {
			runner = exper.Runner{Reps: 1, BaseSeed: 1, Warmup: 300, Measure: 1500, Scheduler: impl}
		}
		fmt.Fprintln(w, "table8 ...")
		t8, err := benchTable8(runner)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, t8)
	}

	if ctx.Err() == nil && (all || *suite == "parallel") {
		// Sharded replications across the worker pool: aggregate
		// events/sec at GOMAXPROCS.
		measure := 4000.0
		reps := 2 * runtime.GOMAXPROCS(0)
		if *quick {
			measure = 1200
			reps = runtime.GOMAXPROCS(0)
		}
		r, err := benchParallel(impl, measure, reps)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %.0f ns/op, %.0f aggregate events/sec\n",
			r.Name, r.NsPerOp, r.EventsPerSec)
		rep.Results = append(rep.Results, r)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := writeFileAtomic(path, data); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d results)\n", path, len(rep.Results))
	if ctx.Err() != nil {
		return fmt.Errorf("interrupted: partial report written to %s", path)
	}
	return nil
}

// writeFileAtomic writes data to path via a temp file and rename, so a
// crash or interrupt mid-write never leaves a truncated report where a
// previous good one stood.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".bench-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// benchKernelChurn measures the scheduler alone: a rolling window of
// 1024 pending events, every fired event scheduling one replacement
// at an exponential offset, until `events` events have fired.
func benchKernelChurn(impl sim.Impl, events int) Result {
	const window = 1024
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := sim.NewImpl(impl)
			st := rng.NewStream(1)
			fired := 0
			var tick sim.Action
			tick = func() {
				fired++
				if fired+window <= events {
					s.After(st.Exp(1), tick)
				}
			}
			for j := 0; j < window; j++ {
				s.After(st.Exp(1), tick)
			}
			s.Run()
			if fired != events {
				b.Fatalf("fired %d events, want %d", fired, events)
			}
		}
	})
	return finish(fmt.Sprintf("kernel/churn/events=%d", events), br, uint64(events))
}

// benchMacro measures one full replication (system build + run) under
// the given policy and site count. The seed is fixed, so every op fires
// the identical event sequence.
func benchMacro(impl sim.Impl, kind policy.Kind, sites int, measure float64) (Result, error) {
	cfg := system.Default()
	cfg.Scheduler = impl
	cfg.PolicyKind = kind
	cfg.NumSites = sites
	cfg.Seed = 1
	cfg.Warmup = 500
	cfg.Measure = measure
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var events uint64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys, err := system.New(cfg)
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			res := sys.Run()
			events = res.EventsFired
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	name := fmt.Sprintf("macro/%s/sites=%d", cfg.PolicyName(), sites)
	return finish(name, br, events), nil
}

// benchOverload measures one audited replication with the overload
// extensions all on — MMPP arrivals at burst factor 4, deadlines and
// hedging — so regressions on the open-arrival hot path (histogram
// adds, watchdog arm/cancel, hedge races) show up in events/sec.
func benchOverload(impl sim.Impl, measure float64) (Result, error) {
	cfg := system.Default()
	cfg.Scheduler = impl
	cfg.PolicyKind = policy.LERT
	cfg.Seed = 1
	cfg.Warmup = 500
	cfg.Measure = measure
	cfg.Arrival = arrival.DefaultMMPP(0.45)
	cfg.Deadline = system.DefaultDeadline()
	cfg.Hedge = system.DefaultHedge()
	cfg.Audit = true
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var events uint64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys, err := system.New(cfg)
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			res := sys.Run()
			if err := sys.Audit(); err != nil {
				runErr = err
				b.Fatal(err)
			}
			events = res.EventsFired
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	return finish("overload/LERT/mmpp", br, events), nil
}

// benchGrayFail measures one audited replication of the gray-failure
// stack: frequent fail-slow episodes rescaling CPU and disk rates, ring
// brownouts, the suspicion detector scoring every completion and
// straggler hedging racing suspect primaries.
func benchGrayFail(impl sim.Impl, measure float64) (Result, error) {
	cfg := system.Default()
	cfg.Scheduler = impl
	cfg.PolicyKind = policy.LERT
	cfg.Seed = 1
	cfg.Warmup = 500
	cfg.Measure = measure
	fc := fault.DefaultSlow()
	fc.SlowMTTF = 1000
	fc.SlowMTTR = 300
	fc.BrownoutMTTF = 1500
	fc.BrownoutMTTR = 200
	fc.BrownoutFactor = 3
	cfg.Fault = fc
	cfg.Suspect = loadinfo.DefaultSuspect()
	cfg.Hedge = system.DefaultHedge()
	cfg.Audit = true
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var events uint64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys, err := system.New(cfg)
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			res := sys.Run()
			if err := sys.Audit(); err != nil {
				runErr = err
				b.Fatal(err)
			}
			events = res.EventsFired
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	return finish("grayfail/LERT/suspect", br, events), nil
}

// benchReplication measures one audited replication with a 2-copy
// partial placement, frequent site crashes and the self-healing replica
// manager on — the rebuild and degraded-read hot path.
func benchReplication(impl sim.Impl, measure float64) (Result, error) {
	cfg := system.Default()
	cfg.Scheduler = impl
	cfg.PolicyKind = policy.LERT
	cfg.Seed = 1
	cfg.Warmup = 500
	cfg.Measure = measure
	placement, err := replica.NewRoundRobin(cfg.NumSites, 10*cfg.NumSites, 2)
	if err != nil {
		return Result{}, err
	}
	cfg.Placement = placement
	cfg.Fault = fault.Default()
	cfg.Fault.MTTF = 1500
	cfg.Fault.MTTR = 600
	cfg.Replication = replica.DefaultManager()
	cfg.Replication.FragmentSize = 2
	cfg.Replication.RebuildDelay = 10
	cfg.Audit = true
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var events uint64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys, err := system.New(cfg)
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			res := sys.Run()
			if err := sys.Audit(); err != nil {
				runErr = err
				b.Fatal(err)
			}
			if res.ReplicasRebuilt == 0 {
				runErr = fmt.Errorf("replication bench rebuilt nothing")
				b.Fatal(runErr)
			}
			events = res.EventsFired
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	return finish("replication/LERT/rebuild", br, events), nil
}

// benchParallelQuery measures one audited replication of the
// parallel-query study workload: every query an operator tree, dop-mode
// placement splitting the bottom join across sites, the operator
// conservation auditor checking every event — the plan engine's
// dispatch/ship/deliver hot path.
func benchParallelQuery(impl sim.Impl, measure float64) (Result, error) {
	cfg := exper.ParallelWorkloadConfig()
	cfg.Scheduler = impl
	cfg.PolicyKind = policy.LERT
	cfg.Parallel.Mode = policy.ParallelDOP
	cfg.Seed = 1
	cfg.Warmup = 500
	cfg.Measure = measure
	cfg.Audit = true
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var events uint64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys, err := system.New(cfg)
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			res := sys.Run()
			if err := sys.Audit(); err != nil {
				runErr = err
				b.Fatal(err)
			}
			if res.ParallelQueries == 0 {
				runErr = fmt.Errorf("parallel-query bench ran no plans")
				b.Fatal(runErr)
			}
			events = res.EventsFired
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	return finish("parallel-query/LERT/dop", br, events), nil
}

// benchServe measures the live allocation service's synchronous decision
// path: a warmed serve.Core taking `decisions` Decide calls, with a
// fresh zero-load Report cycle every 64 decisions so the view never goes
// stale. events/op counts decisions, so events_per_sec is decisions/sec.
func benchServe(decisions int) (Result, error) {
	cfg := serve.Default()
	base := time.Unix(0, 0)
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core, err := serve.NewCore(cfg)
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			now := base
			queries := make([]workload.Query, cfg.NumSites*len(cfg.Classes))
			for d := 0; d < decisions; d++ {
				if d%64 == 0 {
					for s := 0; s < cfg.NumSites; s++ {
						if err := core.Report(s, 0, 0, 0, 0, 0, 0, now); err != nil {
							runErr = err
							b.Fatal(err)
						}
					}
				}
				q := &queries[d%len(queries)]
				class := d % len(cfg.Classes)
				*q = workload.Query{
					Class:      class,
					Home:       d % cfg.NumSites,
					EstReads:   cfg.Classes[class].NumReads,
					EstPageCPU: cfg.Classes[class].PageCPUTime,
				}
				q.Exec = q.Home
				if site, out := core.Decide(q, now); out != serve.OutcomeDecided || site == policy.NoSite {
					runErr = fmt.Errorf("decision %d: outcome %v site %d", d, out, site)
					b.Fatal(runErr)
				}
				now = now.Add(50 * time.Microsecond)
			}
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	name := fmt.Sprintf("serve/%s/decide/decisions=%d", cfg.Policy, decisions)
	return finish(name, br, uint64(decisions)), nil
}

// benchTable8 measures the Table-8 reproduction harness end to end
// (think-time sweep × six policies, replicated).
func benchTable8(r exper.Runner) (Result, error) {
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := exper.Table8(r)
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			if len(rows) == 0 {
				b.Fatal("table8 returned no rows")
			}
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	return finish("table8", br, 0), nil
}

// benchParallel measures a sharded replication batch: `reps`
// independent replications of the default macro model spread across
// exper.Runner's worker pool at GOMAXPROCS workers, each worker owning
// its own scheduler and model. events/op is the deterministic batch
// total (fixed seed sequence), so events/sec is aggregate multi-core
// kernel throughput.
func benchParallel(impl sim.Impl, measure float64, reps int) (Result, error) {
	cfg := system.Default()
	cfg.PolicyKind = policy.LERT
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	workers := runtime.GOMAXPROCS(0)
	runner := exper.Runner{
		Reps:      reps,
		BaseSeed:  1,
		Warmup:    500,
		Measure:   measure,
		Parallel:  true,
		Workers:   workers,
		Scheduler: impl,
	}
	var events uint64
	var runErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			agg, err := runner.Run(cfg)
			if err != nil {
				runErr = err
				b.Fatal(err)
			}
			events = agg.Events
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	name := fmt.Sprintf("parallel/%s/sites=%d/reps=%d/workers=%d",
		cfg.PolicyName(), cfg.NumSites, reps, workers)
	return finish(name, br, events), nil
}

// finish converts a BenchmarkResult into a report Result.
func finish(name string, br testing.BenchmarkResult, eventsPerOp uint64) Result {
	ns := float64(br.T.Nanoseconds()) / float64(br.N)
	res := Result{
		Name:        name,
		Iterations:  br.N,
		NsPerOp:     ns,
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		EventsPerOp: eventsPerOp,
	}
	if eventsPerOp > 0 && ns > 0 {
		res.EventsPerSec = float64(eventsPerOp) * 1e9 / ns
	}
	return res
}
