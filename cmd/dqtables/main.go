// Command dqtables regenerates the paper's evaluation tables.
//
// Usage:
//
//	dqtables                 # all tables at the quick budget
//	dqtables -table 8 -full  # Table 8 at the EXPERIMENTS.md budget
//	dqtables -table 12 -csv  # CSV output for plotting
//
// Paper tables: 5 (WIF grid), 6 (FIF grid), 8 (W̄ vs think time), msg
// (msg_length variant), 9 (W̄ vs mpl), 10 (max mpl vs response), 11 (W̄
// and subnet vs sites), 12 (W̄ and F vs class mix). Extension tables
// (run by name, or all of them with -table ext): repl (partial
// replication), mig (migration ablation), stale (load-info staleness),
// probe (limited information), hetero (CPU speed profiles).
package main

import (
	"flag"
	"fmt"
	"os"

	"dqalloc/internal/exper"
	"dqalloc/internal/policy"
	"dqalloc/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dqtables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dqtables", flag.ContinueOnError)
	var (
		table = fs.String("table", "all", "table to regenerate: 5, 6, 8, msg, 9, 10, 11, 12, repl, mig, stale, probe, hetero, all")
		full  = fs.Bool("full", false, "use the full replication budget (slower)")
		csv   = fs.Bool("csv", false, "emit CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := exper.Quick()
	if *full {
		r = exper.Full()
	}

	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	// "all" regenerates the paper tables; extensions run only by name
	// (they are recorded separately in EXPERIMENTS.md).
	want := func(name string) bool { return *table == "all" || *table == name }
	wantExt := func(name string) bool { return *table == name || *table == "ext" }
	ran := false

	if want("5") {
		rows, err := exper.Table5()
		if err != nil {
			return err
		}
		emit(report.FactorGrid("Table 5: Waiting Improvement Factor WIF(L,i)", rows))
		ran = true
	}
	if want("6") {
		rows, err := exper.Table6()
		if err != nil {
			return err
		}
		emit(report.FactorGrid("Table 6: Fairness Improvement Factor FIF(L,i)", rows))
		ran = true
	}
	if want("8") {
		rows, err := exper.Table8(r)
		if err != nil {
			return err
		}
		emit(report.ImprovementTable("Table 8: Waiting time versus think time", "think_time", rows))
		ran = true
	}
	if want("msg") {
		var rows []exper.MsgLengthRow
		for _, ml := range []float64{1.0, 2.0} {
			row, err := exper.TableMsgLength(r, ml)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		emit(report.MsgLengthTable(rows))
		ran = true
	}
	if want("9") {
		rows, err := exper.Table9(r)
		if err != nil {
			return err
		}
		emit(report.ImprovementTable("Table 9: Waiting time versus mpl", "mpl", rows))
		ran = true
	}
	if want("10") {
		rows, err := exper.Table10(r)
		if err != nil {
			return err
		}
		emit(report.CapacityTable(rows))
		ran = true
	}
	if want("11") {
		rows, err := exper.Table11(r)
		if err != nil {
			return err
		}
		emit(report.SitesTable(rows))
		ran = true
	}
	if want("12") {
		rows, err := exper.Table12(r)
		if err != nil {
			return err
		}
		emit(report.FairnessTable(rows))
		ran = true
	}
	if wantExt("repl") {
		rows, err := exper.ReplicationSweep(r, 60)
		if err != nil {
			return err
		}
		emit(report.ReplicationTable(rows))
		ran = true
	}
	if wantExt("mig") {
		rows, err := exper.MigrationAblation(r, []policy.Kind{policy.Local, policy.BNQ, policy.LERT})
		if err != nil {
			return err
		}
		emit(report.MigrationTable(rows))
		ran = true
	}
	if wantExt("stale") {
		rows, err := exper.StalenessSweep(r, []float64{0, 10, 25, 50, 100, 200, 400, 800})
		if err != nil {
			return err
		}
		emit(report.StalenessTable(rows))
		ran = true
	}
	if wantExt("probe") {
		rows, err := exper.ProbeSweep(r, []int{1, 2, 3, 5})
		if err != nil {
			return err
		}
		emit(report.ProbeTable(rows))
		ran = true
	}
	if wantExt("hetero") {
		rows, err := exper.HeterogeneitySweep(r)
		if err != nil {
			return err
		}
		emit(report.HeterogeneityTable(rows))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown table %q", *table)
	}
	return nil
}
