package main

import "testing"

func TestRunAnalyticalTables(t *testing.T) {
	// Tables 5 and 6 are pure MVA — fast enough to run in a unit test.
	if err := run([]string{"-table", "5"}); err != nil {
		t.Errorf("table 5: %v", err)
	}
	if err := run([]string{"-table", "6", "-csv"}); err != nil {
		t.Errorf("table 6 csv: %v", err)
	}
}

func TestRunUnknownTable(t *testing.T) {
	if err := run([]string{"-table", "99"}); err == nil {
		t.Error("unknown table accepted")
	}
}
