package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dqalloc/internal/policy"
	"dqalloc/internal/serve"
)

// startTarget builds an in-process dqserve-equivalent server for the
// loader to drive, pre-warmed with one clean report per site so the
// first decisions are not spent waiting for the reporter warm-up.
func startTarget(t *testing.T, numSites int) *httptest.Server {
	t.Helper()
	cfg := serve.Default()
	cfg.NumSites = numSites
	cfg.Policy = policy.BNQ
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	for s := 0; s < numSites; s++ {
		body := fmt.Sprintf(`{"site":%d,"num_io":0,"num_cpu":0}`, s)
		resp, err := http.Post(ts.URL+"/v1/report", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	return ts
}

func TestRunRejectsBadInvocations(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	if err := run(ctx, []string{"-rate", "0"}, &buf); err == nil {
		t.Error("zero rate accepted")
	}
	if err := run(ctx, []string{"-floor", "1.5"}, &buf); err == nil {
		t.Error("floor above 1 accepted")
	}
	if err := run(ctx, []string{"stray"}, &buf); err == nil {
		t.Error("stray positional argument accepted")
	}
}

func TestRunDrivesServerAndMeetsFloor(t *testing.T) {
	ts := startTarget(t, 3)
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL, "-sites", "3", "-rate", "400", "-duration", "400ms",
		"-report-period", "25ms", "-service-mean", "5ms", "-floor", "0.9",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "availability=") || !strings.Contains(out, "sent=") {
		t.Errorf("summary missing: %q", out)
	}
	if strings.Contains(out, "sent=0 ") {
		t.Errorf("no requests sent: %q", out)
	}
}

// TestRunClosedLoopDrivesServer: the -closed worker pool must keep the
// server busy, meet the floor, and never send more than one in-flight
// request per worker (bounded by concurrency × duration / min latency —
// asserted loosely via a positive sent count and the floor).
func TestRunClosedLoopDrivesServer(t *testing.T) {
	ts := startTarget(t, 3)
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL, "-sites", "3", "-closed", "-concurrency", "4",
		"-duration", "400ms", "-report-period", "25ms", "-service-mean", "5ms",
		"-floor", "0.9",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "availability=") || strings.Contains(out, "sent=0 ") {
		t.Errorf("closed-loop run sent nothing: %q", out)
	}
	if err := run(context.Background(), []string{"-closed", "-concurrency", "0"}, &buf); err == nil {
		t.Error("zero concurrency accepted with -closed")
	}
}

func TestRunFailsBelowFloor(t *testing.T) {
	// A server that exists only long enough to reserve a port: every
	// request fails at the transport, so availability is zero.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-url", url, "-rate", "500", "-duration", "150ms", "-floor", "0.9",
		"-timeout", "200ms",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "below floor") {
		t.Fatalf("run = %v, want below-floor error\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "availability=0.0000") {
		t.Errorf("summary should show zero availability: %q", buf.String())
	}
}

// TestRunRejectsOutOfRangeSites: a server configured with more sites
// than the driver emulates returns site ids the driver has no state
// for; they must be tallied as bad_site (and sink availability), never
// panic a worker with an out-of-range index.
func TestRunRejectsOutOfRangeSites(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/decide", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"site":7,"mode":"policy","policy":"BNQ"}`)
	})
	mux.HandleFunc("/v1/report", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL, "-sites", "3", "-rate", "300", "-duration", "200ms",
		"-floor", "0.5",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "below floor") {
		t.Fatalf("run = %v, want below-floor error\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "bad_site=") || strings.Contains(out, "bad_site=0 ") {
		t.Errorf("summary should count out-of-range sites: %q", out)
	}
}

// TestRunInterruptFlushesPartialResults is the SIGINT/SIGTERM contract:
// cancellation mid-run still prints the summary and exits non-zero.
func TestRunInterruptFlushesPartialResults(t *testing.T) {
	ts := startTarget(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(150*time.Millisecond, cancel)
	var buf bytes.Buffer
	err := run(ctx, []string{
		"-url", ts.URL, "-sites", "3", "-rate", "300", "-duration", "30s",
		"-report-period", "25ms",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("run = %v, want interrupted error", err)
	}
	if !strings.Contains(buf.String(), "availability=") {
		t.Errorf("partial summary not flushed: %q", buf.String())
	}
}
