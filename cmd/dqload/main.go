// Command dqload drives a running dqserve instance with an open-loop
// Poisson request stream and plays the part of the sites themselves:
// one reporter goroutine per site posts /v1/report at the report
// period, with outstanding-query counts that rise on each routed
// decision and fall after an exponentially distributed synthetic
// service time. That closes the feedback loop the paper's allocation
// policies depend on — decisions change reported loads, which change
// later decisions.
//
// The client tallies every outcome class (decided, fallback, shed,
// unavailable, expired, transport error), tracks decision latency in a
// log-bucketed histogram, and exits non-zero if availability — the
// fraction of requests that received a routing decision — falls below
// -floor. SIGINT/SIGTERM flush the partial summary and exit non-zero.
//
// With -closed the open-loop Poisson source is replaced by a fixed pool
// of -concurrency workers that each keep exactly one request in flight
// — decide, hold the chosen site's outstanding count for a synthetic
// service time, repeat — so offered load self-regulates with server
// latency, like the paper's closed terminal model.
//
// Usage:
//
//	dqload -url http://127.0.0.1:8080 -rate 200 -duration 10s -floor 0.99
//	dqload -url http://127.0.0.1:8080 -closed -concurrency 16 -duration 10s -floor 0.99
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dqalloc/internal/rng"
	"dqalloc/internal/serve"
	"dqalloc/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dqload:", err)
		os.Exit(1)
	}
}

// siteState is one site's synthetic outstanding-load accounting, shared
// between decision workers (increment), service-completion timers
// (decrement), and the reporter goroutine (read).
type siteState struct {
	numIO  atomic.Int64
	numCPU atomic.Int64
}

// tally aggregates client-side outcomes; one mutex guards the counters
// and the latency histogram together.
type tally struct {
	mu          sync.Mutex
	sent        int64
	decided     int64
	fallback    int64
	shed        int64
	unavailable int64
	expired     int64
	rejected4xx int64
	badSite     int64
	netErrors   int64
	hist        *stats.LogHistogram
}

// routed returns how many requests received a routing decision.
func (t *tally) routed() int64 { return t.decided + t.fallback }

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dqload", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		url        = fs.String("url", "http://127.0.0.1:8080", "dqserve base URL")
		sites      = fs.Int("sites", 6, "number of sites to emulate (must match the server)")
		classes    = fs.Int("classes", 2, "number of query classes (must match the server)")
		rate       = fs.Float64("rate", 200, "mean request arrival rate per second (open loop)")
		closed     = fs.Bool("closed", false, "closed-loop mode: -concurrency workers each keep one request in flight (-rate is ignored)")
		workersN   = fs.Int("concurrency", 8, "closed-loop worker count for -closed")
		duration   = fs.Duration("duration", 5*time.Second, "run length")
		reportEach = fs.Duration("report-period", 100*time.Millisecond, "per-site load report period")
		svcMean    = fs.Duration("service-mean", 20*time.Millisecond, "mean synthetic service time at a site")
		deadlineMS = fs.Float64("deadline-ms", 0, "per-request decision deadline (0 = server default)")
		seed       = fs.Uint64("seed", 1, "random seed for arrivals and service times")
		floor      = fs.Float64("floor", 0, "minimum acceptable availability in [0,1]; below it exit non-zero")
		timeout    = fs.Duration("timeout", 2*time.Second, "HTTP client timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *sites <= 0 || *classes <= 0 || *rate <= 0 {
		return fmt.Errorf("sites, classes, and rate must be positive")
	}
	if *closed && *workersN <= 0 {
		return fmt.Errorf("-concurrency %d must be positive with -closed", *workersN)
	}
	if *floor < 0 || *floor > 1 {
		return fmt.Errorf("floor %v out of [0,1]", *floor)
	}

	client := &http.Client{Timeout: *timeout}
	states := make([]*siteState, *sites)
	for i := range states {
		states[i] = &siteState{}
	}
	tl := &tally{hist: stats.NewLogHistogram(1, 60e6, 0.02)}
	root := rng.NewStream(*seed)

	// Reporters: site i posts its outstanding counts every report period
	// until the run context ends.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var reporters sync.WaitGroup
	for i := 0; i < *sites; i++ {
		reporters.Add(1)
		go func(site int) {
			defer reporters.Done()
			tick := time.NewTicker(*reportEach)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
					postReport(client, *url, site, states[site])
				}
			}
		}(i)
	}

	var workers sync.WaitGroup
	interrupted := false
	if *closed {
		// Closed-loop mode: each worker keeps exactly one request in
		// flight — decide, "execute" by holding the site's outstanding
		// count for a service time, repeat. Offered load self-regulates
		// with server latency, the way the paper's closed terminals do.
		loopCtx, cancelLoop := context.WithTimeout(ctx, *duration)
		defer cancelLoop()
		for i := 0; i < *workersN; i++ {
			workers.Add(1)
			go func(id int) {
				defer workers.Done()
				r := root.Child(uint64(10 + id))
				for loopCtx.Err() == nil {
					class := r.Intn(*classes)
					home := r.Intn(*sites)
					site, ok := postDecide(client, *url, class, home, *sites, *deadlineMS, tl)
					if !ok {
						// Back off briefly so a dead or shedding server
						// does not turn the loop into a busy spin.
						select {
						case <-loopCtx.Done():
						case <-time.After(5 * time.Millisecond):
						}
						continue
					}
					ctr := &states[site].numCPU
					if class%2 == 0 {
						ctr = &states[site].numIO
					}
					ctr.Add(1)
					hold := time.Duration(r.Exp(float64(*svcMean)))
					select {
					case <-loopCtx.Done():
					case <-time.After(hold):
					}
					ctr.Add(-1)
				}
			}(i)
		}
		workers.Wait()
		interrupted = ctx.Err() != nil
	} else {
		// Open-loop arrivals: a single goroutine draws Poisson
		// interarrivals and fires one worker per request, never waiting
		// for responses.
		arr := root.Child(1)
		svc := rng.NewStream(*seed).Child(2)
		var svcMu sync.Mutex // service draws happen on worker goroutines
		deadline := time.NewTimer(*duration)
		defer deadline.Stop()

	arrivals:
		for {
			wait := time.Duration(arr.Exp(float64(time.Second) / *rate))
			select {
			case <-ctx.Done():
				interrupted = true
				break arrivals
			case <-deadline.C:
				break arrivals
			case <-time.After(wait):
			}
			class := arr.Intn(*classes)
			home := arr.Intn(*sites)
			workers.Add(1)
			go func() {
				defer workers.Done()
				site, ok := postDecide(client, *url, class, home, *sites, *deadlineMS, tl)
				if !ok {
					return
				}
				// The routed query "executes": bump the site's outstanding
				// count, then release it after an exponential service time.
				ctr := &states[site].numCPU
				if class%2 == 0 {
					ctr = &states[site].numIO
				}
				ctr.Add(1)
				svcMu.Lock()
				hold := time.Duration(svc.Exp(float64(*svcMean)))
				svcMu.Unlock()
				time.AfterFunc(hold, func() { ctr.Add(-1) })
			}()
		}

		workers.Wait()
	}
	cancelRun()
	reporters.Wait()

	tl.mu.Lock()
	defer tl.mu.Unlock()
	avail := 1.0
	if tl.sent > 0 {
		avail = float64(tl.routed()) / float64(tl.sent)
	}
	fmt.Fprintf(w, "dqload: sent=%d decided=%d fallback=%d shed=%d unavailable=%d expired=%d rejected=%d bad_site=%d net_errors=%d\n",
		tl.sent, tl.decided, tl.fallback, tl.shed, tl.unavailable, tl.expired, tl.rejected4xx, tl.badSite, tl.netErrors)
	fmt.Fprintf(w, "dqload: availability=%.4f latency_us p50=%.0f p99=%.0f\n",
		avail, tl.hist.Quantile(0.50), tl.hist.Quantile(0.99))
	if interrupted {
		return errors.New("interrupted; partial results above")
	}
	if *floor > 0 && avail < *floor {
		return fmt.Errorf("availability %.4f below floor %.4f", avail, *floor)
	}
	return nil
}

// postDecide issues one decision request, classifies the outcome into
// the tally, and returns the chosen site when one was granted. A site
// id outside [0, sites) — the server was configured with more sites
// than this driver emulates — is counted as badSite, not routed, so a
// topology mismatch fails the availability floor instead of panicking
// a worker.
func postDecide(client *http.Client, base string, class, home, sites int, deadlineMS float64, tl *tally) (site int, ok bool) {
	req := serve.DecideRequest{Class: class, Home: home, DeadlineMS: deadlineMS}
	body, err := json.Marshal(req)
	if err != nil {
		panic(err) // the struct always marshals
	}
	start := time.Now()
	resp, err := client.Post(base+"/v1/decide", "application/json", bytes.NewReader(body))
	lat := float64(time.Since(start).Microseconds())

	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.sent++
	if err != nil {
		tl.netErrors++
		return 0, false
	}
	defer resp.Body.Close()
	tl.hist.Add(lat)
	switch resp.StatusCode {
	case http.StatusOK:
		var dr serve.DecideResponse
		if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
			tl.netErrors++
			return 0, false
		}
		if dr.Site < 0 || dr.Site >= sites {
			tl.badSite++
			return 0, false
		}
		if dr.Mode == "fallback" {
			tl.fallback++
		} else {
			tl.decided++
		}
		return dr.Site, true
	case http.StatusTooManyRequests:
		tl.shed++
	case http.StatusServiceUnavailable:
		tl.unavailable++
	case http.StatusGatewayTimeout:
		tl.expired++
	default:
		tl.rejected4xx++
	}
	return 0, false
}

// postReport sends one site's current synthetic load; report loss is
// tolerated silently — that is exactly the fault the server's staleness
// and breaker machinery absorbs.
func postReport(client *http.Client, base string, site int, st *siteState) {
	rep := serve.ReportRequest{
		Site:   site,
		NumIO:  int(max64(0, st.numIO.Load())),
		NumCPU: int(max64(0, st.numCPU.Load())),
	}
	body, _ := json.Marshal(rep)
	resp, err := client.Post(base+"/v1/report", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
