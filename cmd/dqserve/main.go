// Command dqserve runs the allocator as a live HTTP/JSON service: it
// ingests per-site load reports, answers "which site runs this query"
// through the policy/Tuning stack, and wraps every path in the
// robustness stack of internal/serve — per-request deadlines, staleness
// aging with round-robin fallback, per-site circuit breakers,
// bounded-queue backpressure, health/readiness endpoints, and graceful
// drain on SIGINT/SIGTERM.
//
// Endpoints:
//
//	POST /v1/decide  {"class":0,"home":2}            → {"site":4,...}
//	POST /v1/report  {"site":4,"num_io":3,"num_cpu":1}
//	GET  /v1/stats   service counters, breaker states, latency quantiles
//	GET  /healthz    process liveness
//	GET  /readyz     503 while draining or with no fresh site reports
//
// Usage:
//
//	dqserve -addr :8080 -policy LERT -sites 6 -ttl 1s
//
// Drive it with cmd/dqload.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dqalloc/internal/policy"
	"dqalloc/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dqserve:", err)
		os.Exit(1)
	}
}

// parseKind maps a policy name to its Kind.
func parseKind(name string) (policy.Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "LOCAL":
		return policy.Local, nil
	case "RANDOM":
		return policy.Random, nil
	case "BNQ":
		return policy.BNQ, nil
	case "BNQRD":
		return policy.BNQRD, nil
	case "LERT":
		return policy.LERT, nil
	case "WORK":
		return policy.Work, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dqserve", flag.ContinueOnError)
	fs.SetOutput(w)
	def := serve.Default()
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		polName    = fs.String("policy", "LERT", "allocation policy: LOCAL, RANDOM, BNQ, BNQRD, LERT, WORK")
		sites      = fs.Int("sites", def.NumSites, "number of execution sites")
		disks      = fs.Int("disks", def.NumDisks, "disks per site (cost model)")
		seed       = fs.Uint64("seed", def.Seed, "random seed for the policy streams")
		ttl        = fs.Duration("ttl", def.TTL, "report freshness horizon")
		gapFactor  = fs.Float64("gap-factor", def.GapFactor, "breaker opens after gap-factor×ttl without a report")
		openFor    = fs.Duration("open-for", def.OpenFor, "breaker open→half-open cooldown")
		probes     = fs.Int("half-open-probes", def.HalfOpenProbes, "probe decisions allowed while half-open")
		rejects    = fs.Int("reject-threshold", def.RejectThreshold, "consecutive rejecting reports to open a breaker")
		slowLat    = fs.Duration("slow-latency", def.SlowLatency, "report latency_ms above this demotes the site to half-open probation (0 = off)")
		admitMax   = fs.Int("admit-max", 0, "per-site committed-query cap (0 = unbounded)")
		queueBound = fs.Int("queue-bound", def.QueueBound, "decision queue bound (beyond it requests are shed)")
		deadline   = fs.Duration("deadline", def.DefaultDeadline, "default per-request decision deadline")
		maxDl      = fs.Duration("max-deadline", def.MaxDeadline, "clamp on client-supplied deadlines")
		hyst       = fs.Float64("hyst", 0, "anti-herd hysteresis margin in [0,1)")
		powerK     = fs.Int("power-k", 0, "anti-herd power-of-K remote sampling (0 = scan all)")
		randomTies = fs.Bool("random-ties", false, "anti-herd probabilistic tie-breaking")
		drain      = fs.Duration("drain-timeout", 10*time.Second, "graceful drain budget on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	kind, err := parseKind(*polName)
	if err != nil {
		return err
	}

	cfg := def
	cfg.Policy = kind
	cfg.NumSites = *sites
	cfg.NumDisks = *disks
	cfg.Seed = *seed
	cfg.TTL = *ttl
	cfg.GapFactor = *gapFactor
	cfg.OpenFor = *openFor
	cfg.HalfOpenProbes = *probes
	cfg.RejectThreshold = *rejects
	cfg.SlowLatency = *slowLat
	cfg.AdmitMax = *admitMax
	cfg.QueueBound = *queueBound
	cfg.DefaultDeadline = *deadline
	cfg.MaxDeadline = *maxDl
	cfg.Tuning = policy.Tuning{Hysteresis: *hyst, PowerK: *powerK, RandomTies: *randomTies}

	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(w, "dqserve: policy=%s sites=%d ttl=%v listening on %s\n",
		strings.ToUpper(*polName), *sites, *ttl, ln.Addr())

	// Read and idle timeouts bound how long a stalled or silent client
	// can pin a connection — without them one stuck peer can hold a
	// graceful drain hostage for the whole drain budget.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop readiness, let in-flight requests finish,
	// then stop the decision loop.
	fmt.Fprintln(w, "dqserve: draining")
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		// Drain budget blown: force-close the listener and connections.
		// Handlers may still be mid-flight, but enqueue refuses once the
		// queue is closed (serve.Server.enqueue), so stopping the
		// decision loop now is safe; give it a fresh beat to flush the
		// backlog since dctx has already expired.
		hs.Close()
		fctx, fcancel := context.WithTimeout(context.Background(), time.Second)
		defer fcancel()
		srv.Shutdown(fctx)
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(w, "dqserve: drained: %d requests (%d decided, %d fallback, %d shed, %d expired), %d reports, %d breaker opens\n",
		st.Requests, st.Decided, st.Fallback, st.Shed, st.Expired, st.Reports, st.BreakerOpens)
	return nil
}
