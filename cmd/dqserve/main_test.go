package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dqalloc/internal/policy"
)

// syncBuffer is a goroutine-safe io.Writer for capturing run's output
// while it executes on another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]policy.Kind{
		"LOCAL": policy.Local, "random": policy.Random, " Bnq ": policy.BNQ,
		"BNQRD": policy.BNQRD, "LERT": policy.LERT, "work": policy.Work,
	} {
		got, err := parseKind(name)
		if err != nil || got != want {
			t.Errorf("parseKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := parseKind("FIFO"); err == nil {
		t.Error("parseKind accepted an unknown policy")
	}
}

func TestRunRejectsBadInvocations(t *testing.T) {
	ctx := context.Background()
	var buf syncBuffer
	if err := run(ctx, []string{"-policy", "NOPE"}, &buf); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run(ctx, []string{"stray"}, &buf); err == nil {
		t.Error("stray positional argument accepted")
	}
	if err := run(ctx, []string{"-sites", "0"}, &buf); err == nil {
		t.Error("zero sites accepted")
	}
}

// waitForListen polls the output buffer for the "listening on" line and
// returns the bound address.
func waitForListen(t *testing.T, buf *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		out := buf.String()
		if i := strings.Index(out, "listening on "); i >= 0 {
			rest := out[i+len("listening on "):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				return strings.TrimSpace(rest[:j])
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never reported its address; output: %q", buf.String())
	return ""
}

// TestRunServesAndDrainsOnCancel is the command-level lifecycle test:
// run() binds an ephemeral port, serves decisions, and on context
// cancellation (the SIGTERM path) drains gracefully and reports totals.
func TestRunServesAndDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-policy", "BNQ", "-sites", "3",
			"-ttl", "500ms", "-drain-timeout", "5s",
		}, &buf)
	}()
	addr := waitForListen(t, &buf)
	base := "http://" + addr

	for s := 0; s < 3; s++ {
		body := fmt.Sprintf(`{"site":%d,"num_io":0,"num_cpu":0}`, s)
		resp, err := http.Post(base+"/v1/report", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("report %d: status %d", s, resp.StatusCode)
		}
	}
	resp, err := http.Get(base + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/decide", "application/json",
		strings.NewReader(`{"class":0,"home":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decide: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
	out := buf.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained:") {
		t.Errorf("drain messages missing from output: %q", out)
	}
	if !strings.Contains(out, "1 requests (1 decided") {
		t.Errorf("final totals missing from output: %q", out)
	}
}
