package main

import "testing"

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{
		"LOCAL": "LOCAL", "local": "LOCAL", "Random": "RANDOM",
		"bnq": "BNQ", "BNQRD": "BNQRD", "lert": "LERT",
	} {
		kind, err := parsePolicy(name)
		if err != nil {
			t.Fatalf("parsePolicy(%q): %v", name, err)
		}
		if kind.String() != want {
			t.Errorf("parsePolicy(%q) = %v, want %v", name, kind, want)
		}
	}
	if _, err := parsePolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	err := run([]string{"-policy", "BNQ", "-warmup", "200", "-measure", "1500"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-policy", "nope"}); err == nil {
		t.Error("bad policy flag accepted")
	}
	if err := run([]string{"-sites", "0"}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunWithExtensionsFlags(t *testing.T) {
	err := run([]string{
		"-policy", "LERT", "-oracle", "-info-period", "50",
		"-warmup", "200", "-measure", "1500", "-reps", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaultFlags(t *testing.T) {
	err := run([]string{
		"-policy", "LERT", "-sites", "3", "-mpl", "5",
		"-warmup", "200", "-measure", "2000",
		"-mttf", "1500", "-mttr", "300", "-drop", "0.05", "-audit",
	})
	if err != nil {
		t.Fatal(err)
	}
	// -drop alone must enable network faults without site crashes.
	err = run([]string{
		"-policy", "BNQ", "-warmup", "200", "-measure", "1500",
		"-drop", "0.1", "-fault-retries", "2", "-audit",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-drop", "1.5"}); err == nil {
		t.Error("invalid drop probability accepted")
	}
}
