package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden files under testdata/.
var update = flag.Bool("update", false, "rewrite golden files")

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{
		"LOCAL": "LOCAL", "local": "LOCAL", "Random": "RANDOM",
		"bnq": "BNQ", "BNQRD": "BNQRD", "lert": "LERT",
	} {
		kind, err := parsePolicy(name)
		if err != nil {
			t.Fatalf("parsePolicy(%q): %v", name, err)
		}
		if kind.String() != want {
			t.Errorf("parsePolicy(%q) = %v, want %v", name, kind, want)
		}
	}
	if _, err := parsePolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	err := run([]string{"-policy", "BNQ", "-warmup", "200", "-measure", "1500"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-policy", "nope"}, io.Discard); err == nil {
		t.Error("bad policy flag accepted")
	}
	if err := run([]string{"-sites", "0"}, io.Discard); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunWithExtensionsFlags(t *testing.T) {
	err := run([]string{
		"-policy", "LERT", "-oracle", "-info-period", "50",
		"-warmup", "200", "-measure", "1500", "-reps", "2",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaultFlags(t *testing.T) {
	err := run([]string{
		"-policy", "LERT", "-sites", "3", "-mpl", "5",
		"-warmup", "200", "-measure", "2000",
		"-mttf", "1500", "-mttr", "300", "-drop", "0.05", "-audit",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// -drop alone must enable network faults without site crashes.
	err = run([]string{
		"-policy", "BNQ", "-warmup", "200", "-measure", "1500",
		"-drop", "0.1", "-fault-retries", "2", "-audit",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-drop", "1.5"}, io.Discard); err == nil {
		t.Error("invalid drop probability accepted")
	}
}

func TestRunWithImperfectionFlags(t *testing.T) {
	err := run([]string{
		"-policy", "LERT", "-sites", "3", "-mpl", "5",
		"-warmup", "200", "-measure", "2000", "-info-period", "40",
		"-est-noise", "0.5", "-hyst", "0.2", "-power-k", "2", "-random-ties",
		"-admit-max", "4", "-admit-defer", "5", "-admit-max-defers", "2",
		"-audit",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithOverloadFlags(t *testing.T) {
	err := run([]string{
		"-policy", "LERT", "-sites", "3", "-mpl", "5",
		"-warmup", "200", "-measure", "2000",
		"-arrival", "poisson", "-rate", "0.15",
		"-deadline", "250", "-hedge-quantile", "0.9",
		"-audit",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The chaos combination — bursty arrivals, deadlines, hedging and
	// faults at once — must run audited and clean.
	err = run([]string{
		"-policy", "BNQ", "-sites", "3", "-mpl", "5",
		"-warmup", "200", "-measure", "2000",
		"-arrival", "mmpp", "-rate", "0.15", "-burst", "4",
		"-deadline", "250", "-hedge-quantile", "0.9",
		"-mttf", "1500", "-mttr", "300", "-drop", "0.03",
		"-audit",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunFlagErrors checks that every malformed imperfect-information
// flag combination comes back as an error from run, never a panic.
func TestRunFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":        {"-no-such-flag"},
		"unparsable value":    {"-est-noise", "lots"},
		"bad noise dist":      {"-est-noise", "0.5", "-est-noise-dist", "cauchy"},
		"negative noise":      {"-est-noise", "-0.5"},
		"hysteresis >= 1":     {"-hyst", "1"},
		"negative hysteresis": {"-hyst", "-0.1"},
		"power-k too large":   {"-power-k", "99"},
		"ties without cost":   {"-policy", "LOCAL", "-random-ties"},
		"defer without bound": {"-admit-max", "0", "-admit-defer", "-3"},
		"negative defers":     {"-admit-max", "4", "-admit-defer", "5", "-admit-max-defers", "-1"},
		"unknown arrival":     {"-arrival", "weibull"},
		"zero arrival rate":   {"-arrival", "poisson", "-rate", "0"},
		"burst below one":     {"-arrival", "mmpp", "-rate", "0.2", "-burst", "0.5"},
		"negative deadline":   {"-deadline", "-10"},
		"hedge quantile >= 1": {"-hedge-quantile", "1"},
		"negative hedge":      {"-hedge-quantile", "-0.5"},
		"rebuild unplaced":    {"-rebuild"},
		"copies over sites":   {"-objects", "12", "-copies", "9"},
		"bad degraded mode":   {"-objects", "12", "-rebuild", "-degraded", "maybe"},
		"floor over initial":  {"-objects", "12", "-copies", "2", "-rebuild", "-min-copies", "3"},
		"ceiling over sites":  {"-objects", "12", "-rebuild", "-max-copies", "9"},
		"scan without rates":  {"-objects", "12", "-rebuild", "-scan", "100", "-hot", "0.01", "-cold", "0.05"},
		"zero fragment":       {"-objects", "12", "-rebuild", "-frag-size", "0"},
	}
	for name, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("%s: args %v accepted", name, args)
		}
	}
}

func TestRunWithReplicationFlags(t *testing.T) {
	// Crash-driven re-replication with degraded fetches, audited.
	err := run([]string{
		"-policy", "LERT", "-mpl", "5",
		"-warmup", "200", "-measure", "3000",
		"-objects", "30", "-copies", "2", "-rebuild",
		"-frag-size", "2", "-rebuild-delay", "10",
		"-mttf", "1500", "-mttr", "300",
		"-audit",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Load-driven add/drop plus the reject mode, audited.
	err = run([]string{
		"-policy", "BNQ", "-mpl", "5",
		"-warmup", "200", "-measure", "3000",
		"-objects", "30", "-copies", "2", "-rebuild", "-max-copies", "4",
		"-scan", "200", "-hot", "1e-4", "-cold", "1e-5",
		"-degraded", "reject",
		"-mttf", "2000", "-mttr", "300",
		"-audit",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// A static partial placement without the manager still runs.
	err = run([]string{
		"-policy", "LERT", "-mpl", "5",
		"-warmup", "200", "-measure", "1500",
		"-objects", "30", "-copies", "2",
		"-audit",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

// goldenArgs is a small deterministic run exercising the new
// imperfect-information surface end to end.
func goldenArgs(jsonOut bool) []string {
	args := []string{
		"-policy", "BNQ", "-sites", "3", "-mpl", "5", "-seed", "3",
		"-warmup", "100", "-measure", "1000", "-info-period", "40",
		"-est-noise", "0.5", "-hyst", "0.1",
		"-admit-max", "4", "-admit-defer", "5",
		"-audit",
	}
	if jsonOut {
		args = append(args, "-json")
	}
	return args
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output does not match %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestRunGoldenText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(goldenArgs(false), &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "results.golden", buf.Bytes())
}

// replicationGoldenArgs is a deterministic crash-and-rebuild run pinning
// the replication output surface.
func replicationGoldenArgs(jsonOut bool) []string {
	args := []string{
		"-policy", "LERT", "-mpl", "5", "-seed", "3",
		"-warmup", "500", "-measure", "6000",
		"-objects", "30", "-copies", "2", "-rebuild",
		"-frag-size", "2", "-rebuild-delay", "10",
		"-mttf", "1500", "-mttr", "600",
		"-audit",
	}
	if jsonOut {
		args = append(args, "-json")
	}
	return args
}

func TestRunReplicationGoldenText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(replicationGoldenArgs(false), &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"replicas: rebuilt=", "frag avail"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("replication output missing %q:\n%s", want, buf.Bytes())
		}
	}
	checkGolden(t, "results_replication.golden", buf.Bytes())
}

func TestRunReplicationGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(replicationGoldenArgs(true), &buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	for _, field := range []string{
		"ReplicasRebuilt", "RebuildsAborted", "DegradedReads",
		"NoReplicaRejects", "FragAvailability", "MinFragAvailability",
	} {
		if _, ok := parsed[0][field]; !ok {
			t.Errorf("JSON result missing field %q", field)
		}
	}
	checkGolden(t, "results_replication_json.golden", buf.Bytes())
}

func TestRunWithParallelFlags(t *testing.T) {
	// Every placement mode runs audited, alone and under chaos.
	for _, mode := range []string{"single", "operator", "dop"} {
		err := run([]string{
			"-policy", "LERT", "-sites", "4", "-mpl", "5",
			"-warmup", "200", "-measure", "2000",
			"-par-mode", mode, "-par-join", "0.6",
			"-audit",
		}, io.Discard)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
	// Trees + deadlines + operator hedging + faults + partial placement.
	err := run([]string{
		"-policy", "LERT", "-sites", "4", "-mpl", "5",
		"-warmup", "200", "-measure", "2000",
		"-par-mode", "dop", "-par-join", "0.8", "-par-overhead", "0.5",
		"-deadline", "300", "-hedge-quantile", "0.9", "-par-hedge",
		"-objects", "12", "-copies", "2",
		"-mttf", "1500", "-mttr", "300", "-drop", "0.03",
		"-audit",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for name, args := range map[string][]string{
		"unknown mode":        {"-par-mode", "both"},
		"hedge without trees": {"-par-hedge"},
		"hedge without hedge": {"-par-mode", "dop", "-par-hedge"},
		"bad join prob":       {"-par-mode", "dop", "-par-join", "1.5"},
		"negative maxdop":     {"-par-mode", "dop", "-par-maxdop", "-1"},
		"trees and migration": {"-par-mode", "single"},
	} {
		if name == "trees and migration" {
			continue // no migration flag; covered by the config test
		}
		if err := run(args, io.Discard); err == nil {
			t.Errorf("%s: args %v accepted", name, args)
		}
	}
}

// parallelGoldenArgs is a deterministic operator-tree run pinning the
// parallel-query output surface.
func parallelGoldenArgs(jsonOut bool) []string {
	args := []string{
		"-policy", "LERT", "-sites", "4", "-mpl", "5", "-seed", "3",
		"-warmup", "500", "-measure", "6000",
		"-par-mode", "dop", "-par-join", "0.7", "-par-overhead", "0.5",
		"-audit",
	}
	if jsonOut {
		args = append(args, "-json")
	}
	return args
}

func TestRunParallelGoldenText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(parallelGoldenArgs(false), &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plans: parallel=", "operators: spawned="} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("parallel output missing %q:\n%s", want, buf.Bytes())
		}
	}
	checkGolden(t, "results_parallel.golden", buf.Bytes())
}

func TestRunParallelGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(parallelGoldenArgs(true), &buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	for _, field := range []string{
		"Operators", "OperatorsCompleted", "ParallelQueries", "DOPHist",
	} {
		if _, ok := parsed[0][field]; !ok {
			t.Errorf("JSON result missing field %q", field)
		}
	}
	checkGolden(t, "results_parallel_json.golden", buf.Bytes())
}

func TestRunWithSlowFaultFlags(t *testing.T) {
	// Fail-slow episodes alone, audited (conservation through the
	// rate-scaling path).
	err := run([]string{
		"-policy", "LERT", "-sites", "3", "-mpl", "5",
		"-warmup", "200", "-measure", "3000",
		"-slow-mttf", "800", "-slow-mttr", "300",
		"-audit",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The full gray-failure stack: CPU-only fail-slow, ring brownouts,
	// the suspicion detector and straggler hedging, plus crashes.
	err = run([]string{
		"-policy", "BNQ", "-sites", "3", "-mpl", "5",
		"-warmup", "200", "-measure", "3000",
		"-slow-mttf", "800", "-slow-mttr", "300", "-slow-factor", "6", "-slow-disk", "1",
		"-brownout-mttf", "1000", "-brownout-mttr", "200", "-brownout-factor", "3",
		"-suspect", "-suspect-ratio", "2.5", "-suspect-penalty", "500",
		"-hedge-quantile", "0.9",
		"-mttf", "2000", "-mttr", "300",
		"-audit",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for name, args := range map[string][]string{
		"slow factor below one":     {"-slow-mttf", "800", "-slow-factor", "0.5"},
		"slow disk below one":       {"-slow-mttf", "800", "-slow-disk", "0.5"},
		"brownout factor below one": {"-brownout-mttf", "800", "-brownout-factor", "0.5"},
		"suspect ratio w/o detect":  {"-suspect-ratio", "2.5"},
		"penalty w/o detect":        {"-suspect-penalty", "10"},
		"suspect ratio below clear": {"-suspect", "-suspect-ratio", "1.2"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("%s: args %v accepted", name, args)
		}
	}
}

// grayGoldenArgs is a deterministic fail-slow run with the detection
// stack on, pinning the gray-failure output surface.
func grayGoldenArgs(jsonOut bool) []string {
	args := []string{
		"-policy", "LERT", "-sites", "3", "-mpl", "5", "-seed", "3",
		"-think", "600", "-warmup", "300", "-measure", "8000",
		"-slow-mttf", "1500", "-slow-mttr", "500", "-slow-factor", "10",
		"-brownout-mttf", "2000", "-brownout-mttr", "300",
		"-suspect", "-hedge-quantile", "0.9",
		"-audit",
	}
	if jsonOut {
		args = append(args, "-json")
	}
	return args
}

func TestRunGrayGoldenText(t *testing.T) {
	var buf bytes.Buffer
	if err := run(grayGoldenArgs(false), &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fail-slow: episodes=", "suspicion: transfers="} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("gray-failure output missing %q:\n%s", want, buf.Bytes())
		}
	}
	checkGolden(t, "results_gray.golden", buf.Bytes())
}

func TestRunGrayGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(grayGoldenArgs(true), &buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	for _, field := range []string{
		"SlowEpisodes", "DegradedTime", "Brownouts", "SuspectTransfers",
	} {
		if _, ok := parsed[0][field]; !ok {
			t.Errorf("JSON result missing field %q", field)
		}
	}
	checkGolden(t, "results_gray_json.golden", buf.Bytes())
}

func TestRunGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(goldenArgs(true), &buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if len(parsed) != 1 {
		t.Fatalf("got %d result objects, want 1", len(parsed))
	}
	for _, field := range []string{
		"Policy", "Completed", "MeanWait", "QueriesShed", "QueriesDeferred",
		"RespQuantiles", "DeadlineMisses", "Hedged",
	} {
		if _, ok := parsed[0][field]; !ok {
			t.Errorf("JSON result missing field %q", field)
		}
	}
	checkGolden(t, "results_json.golden", buf.Bytes())
}
