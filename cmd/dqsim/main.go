// Command dqsim runs one simulation of the distributed database model
// and prints its measurements.
//
// Usage:
//
//	dqsim -policy LERT -sites 6 -mpl 20 -think 350 -pio 0.5 -seed 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"dqalloc/internal/arrival"
	"dqalloc/internal/fault"
	"dqalloc/internal/loadinfo"
	"dqalloc/internal/noise"
	"dqalloc/internal/policy"
	"dqalloc/internal/replica"
	"dqalloc/internal/sim"
	"dqalloc/internal/system"
	"dqalloc/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dqsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dqsim", flag.ContinueOnError)
	var (
		policyName = fs.String("policy", "LERT", "allocation policy: LOCAL, RANDOM, BNQ, BNQRD, LERT, WORK")
		sites      = fs.Int("sites", 6, "number of DB sites")
		disks      = fs.Int("disks", 2, "disks per site")
		mpl        = fs.Int("mpl", 20, "terminals per site")
		think      = fs.Float64("think", 350, "mean terminal think time")
		pio        = fs.Float64("pio", 0.5, "probability a query is I/O-bound")
		msgLen     = fs.Float64("msg", 1, "message length (transfer time units)")
		infoPeriod = fs.Float64("info-period", 0, "load-info broadcast period (0 = perfect info)")
		oracle     = fs.Bool("oracle", false, "give the allocator exact per-query demands")
		tracePath  = fs.String("trace", "", "write a per-query CSV trace to this file")
		seed       = fs.Uint64("seed", 1, "random seed")
		reps       = fs.Int("reps", 1, "replications (seeds seed, seed+1, ...)")
		warmup     = fs.Float64("warmup", 5000, "warmup horizon")
		measure    = fs.Float64("measure", 50000, "measured horizon")
		mttf       = fs.Float64("mttf", 0, "mean time to site failure (0 = no crashes)")
		mttr       = fs.Float64("mttr", 0, "mean time to site repair (0 = fault default)")
		drop       = fs.Float64("drop", 0, "probability a ring message is dropped")
		netDelay   = fs.Float64("net-delay", 0, "mean extra ring transmission delay")
		faultTO    = fs.Float64("fault-timeout", 0, "watchdog detection timeout (0 = fault default)")
		faultTries = fs.Int("fault-retries", -1, "max query retries after loss (-1 = fault default)")
		slowMTTF   = fs.Float64("slow-mttf", 0, "mean time between per-site fail-slow onsets (0 = off)")
		slowMTTR   = fs.Float64("slow-mttr", 800, "mean fail-slow episode duration for -slow-mttf")
		slowFactor = fs.Float64("slow-factor", 10, "service-time multiplier during a fail-slow episode")
		slowDisk   = fs.Float64("slow-disk", 0, "disk multiplier during fail-slow (0 = follow -slow-factor)")
		brownMTTF  = fs.Float64("brownout-mttf", 0, "mean time between ring brownout onsets (0 = off)")
		brownMTTR  = fs.Float64("brownout-mttr", 500, "mean brownout episode duration for -brownout-mttf")
		brownFact  = fs.Float64("brownout-factor", 4, "ring transmission multiplier during a brownout")
		suspect    = fs.Bool("suspect", false, "enable the gray-failure suspicion detector")
		susRatio   = fs.Float64("suspect-ratio", 0, "suspect a site past this multiple of the median slowdown (0 = detector default)")
		susPenalty = fs.Float64("suspect-penalty", -1, "cost surcharge on suspect sites (-1 = detector default)")
		audit      = fs.Bool("audit", false, "run invariant auditors and fail on any violation")
		schedName  = fs.String("sched", "calendar", "event scheduler: calendar (default) or heap (reference; identical results)")

		estNoise  = fs.Float64("est-noise", 0, "estimation-error sigma on both demand estimates (0 = exact)")
		noiseDist = fs.String("est-noise-dist", "lognormal", "estimation-error distribution: lognormal or uniform")
		hyst      = fs.Float64("hyst", 0, "anti-herd hysteresis margin in [0,1)")
		powerK    = fs.Int("power-k", 0, "cost only K sampled remote sites per decision (0 = all)")
		randTies  = fs.Bool("random-ties", false, "break equal-cost remote ties uniformly at random")
		admitMax  = fs.Int("admit-max", 0, "per-site admission bound on committed queries (0 = off)")
		admitDef  = fs.Float64("admit-defer", 0, "mean resubmission delay for bounced queries (0 = shed immediately)")
		admitTry  = fs.Int("admit-max-defers", 3, "deferral budget per query before shedding")
		arrivalP  = fs.String("arrival", "", "open arrival process: poisson or mmpp (default: closed terminals)")
		rate      = fs.Float64("rate", 0.3, "offered arrival rate for -arrival (queries per time unit)")
		burst     = fs.Float64("burst", 4, "MMPP burst factor for -arrival mmpp")
		deadline  = fs.Float64("deadline", 0, "per-query response-time deadline (0 = off)")
		hedgeQ    = fs.Float64("hedge-quantile", 0, "hedge remote stragglers past this response quantile (0 = off)")
		jsonOut   = fs.Bool("json", false, "emit results as a JSON array instead of text")

		parMode     = fs.String("par-mode", "", "operator-tree plan placement: single, operator, or dop (default: monolithic queries)")
		parJoin     = fs.Float64("par-join", 0.3, "probability a query becomes a join tree for -par-mode")
		parFilter   = fs.Float64("par-filter", 0.25, "probability a join tree carries a filter for -par-mode")
		parMaxDOP   = fs.Int("par-maxdop", 0, "degree-of-parallelism cap for -par-mode dop (0 = site count)")
		parOverhead = fs.Float64("par-overhead", 2, "per-extra-site split overhead for -par-mode dop")
		parHedge    = fs.Bool("par-hedge", false, "hedge straggling remote operators (requires -par-mode and -hedge-quantile)")

		objects   = fs.Int("objects", 0, "number of DB objects in a round-robin partial placement (0 = every site holds everything)")
		copies    = fs.Int("copies", 2, "copies per object for -objects")
		rebuild   = fs.Bool("rebuild", false, "self-healing replica manager: crash-driven re-replication and degraded reads (requires -objects)")
		minCopies = fs.Int("min-copies", 0, "replication floor for -rebuild (0 = -copies)")
		maxCopies = fs.Int("max-copies", 0, "replication ceiling for -rebuild (0 = the floor)")
		fragSize  = fs.Float64("frag-size", 8, "fragment transfer size for rebuilds and degraded fetches")
		rebuildD  = fs.Float64("rebuild-delay", 25, "staging delay before a deficit's rebuild transfer")
		scanP     = fs.Float64("scan", 0, "load-driven add/drop scan period for -rebuild (0 = off)")
		hotRate   = fs.Float64("hot", 0.05, "EWMA access rate above which -scan promotes a fragment")
		coldRate  = fs.Float64("cold", 0.005, "EWMA access rate below which -scan demotes a fragment")
		degraded  = fs.String("degraded", "fetch", "no-up-holder behavior for -rebuild: fetch or reject")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	kind, err := parsePolicy(*policyName)
	if err != nil {
		return err
	}
	cfg := system.Default()
	cfg.PolicyKind = kind
	cfg.NumSites = *sites
	cfg.NumDisks = *disks
	cfg.MPL = *mpl
	cfg.ThinkTime = *think
	cfg.ClassProbs = []float64{*pio, 1 - *pio}
	for i := range cfg.Classes {
		cfg.Classes[i].MsgLength = *msgLen
	}
	if *infoPeriod > 0 {
		cfg.InfoMode = system.InfoPeriodic
		cfg.InfoPeriod = *infoPeriod
	}
	if *oracle {
		cfg.EstimateMode = workload.EstimateActual
	}
	cfg.Seed = *seed
	cfg.Warmup = *warmup
	cfg.Measure = *measure
	cfg.Audit = *audit
	if cfg.Scheduler, err = sim.ParseImpl(*schedName); err != nil {
		return err
	}
	if *mttf > 0 || *drop > 0 || *netDelay > 0 || *slowMTTF > 0 || *brownMTTF > 0 {
		fc := fault.Default()
		fc.MTTF = math.Inf(1) // crashes off unless -mttf is given
		if *mttf > 0 {
			fc.MTTF = *mttf
		}
		if *mttr > 0 {
			fc.MTTR = *mttr
		}
		fc.DropProb = *drop
		fc.DelayMean = *netDelay
		if *faultTO > 0 {
			fc.DetectTimeout = *faultTO
		}
		if *faultTries >= 0 {
			fc.MaxRetries = *faultTries
		}
		if *slowMTTF > 0 {
			fc.SlowMTTF = *slowMTTF
			fc.SlowMTTR = *slowMTTR
			fc.SlowFactor = *slowFactor
			fc.SlowDiskFactor = *slowDisk
		}
		if *brownMTTF > 0 {
			fc.BrownoutMTTF = *brownMTTF
			fc.BrownoutMTTR = *brownMTTR
			fc.BrownoutFactor = *brownFact
		}
		cfg.Fault = fc
	}
	if *suspect {
		sc := loadinfo.DefaultSuspect()
		if *susRatio > 0 {
			sc.Ratio = *susRatio
		}
		if *susPenalty >= 0 {
			sc.Penalty = *susPenalty
		}
		cfg.Suspect = sc
	} else if *susRatio != 0 || *susPenalty >= 0 {
		return fmt.Errorf("-suspect-ratio/-suspect-penalty require -suspect")
	}
	if *estNoise < 0 {
		return fmt.Errorf("-est-noise %v is negative", *estNoise)
	}
	if *admitDef < 0 {
		return fmt.Errorf("-admit-defer %v is negative", *admitDef)
	}
	if *estNoise > 0 {
		dist, err := noise.ParseDist(*noiseDist)
		if err != nil {
			return err
		}
		cfg.Noise = noise.Config{Enabled: true, Dist: dist, ReadsSigma: *estNoise, CPUSigma: *estNoise}
	}
	cfg.Tuning = policy.Tuning{Hysteresis: *hyst, PowerK: *powerK, RandomTies: *randTies}
	switch strings.ToLower(*arrivalP) {
	case "":
	case "poisson":
		cfg.Arrival = arrival.DefaultPoisson(*rate)
	case "mmpp":
		cfg.Arrival = arrival.DefaultMMPP(*rate)
		cfg.Arrival.BurstFactor = *burst
	default:
		return fmt.Errorf("unknown arrival process %q (want poisson or mmpp)", *arrivalP)
	}
	if *deadline > 0 {
		cfg.Deadline = system.DeadlineConfig{Enabled: true, Deadline: *deadline}
	} else if *deadline < 0 {
		return fmt.Errorf("-deadline %v is negative", *deadline)
	}
	if *hedgeQ > 0 {
		hc := system.DefaultHedge()
		hc.Quantile = *hedgeQ
		cfg.Hedge = hc
	} else if *hedgeQ < 0 {
		return fmt.Errorf("-hedge-quantile %v is negative", *hedgeQ)
	}
	if *admitMax > 0 {
		cfg.Admission = system.AdmissionConfig{
			Enabled:    true,
			MaxQueue:   *admitMax,
			Defer:      *admitDef > 0,
			DeferDelay: *admitDef,
			MaxDefers:  *admitTry,
		}
	}
	if *parMode != "" {
		mode, err := policy.ParseParallelMode(strings.ToLower(*parMode))
		if err != nil {
			return err
		}
		pc := system.DefaultParallel()
		pc.Mode = mode
		pc.JoinProb = *parJoin
		pc.FilterProb = *parFilter
		pc.MaxDOP = *parMaxDOP
		pc.SplitOverhead = *parOverhead
		pc.Hedge = *parHedge
		cfg.Parallel = pc
	} else if *parHedge {
		return fmt.Errorf("-par-hedge requires -par-mode")
	}
	if *objects > 0 {
		p, err := replica.NewRoundRobin(*sites, *objects, *copies)
		if err != nil {
			return err
		}
		cfg.Placement = p
	}
	if *rebuild {
		if *objects <= 0 {
			return fmt.Errorf("-rebuild requires -objects")
		}
		rc := replica.DefaultManager()
		rc.MinCopies = *copies
		if *minCopies > 0 {
			rc.MinCopies = *minCopies
		}
		rc.MaxCopies = rc.MinCopies
		if *maxCopies > 0 {
			rc.MaxCopies = *maxCopies
		}
		rc.FragmentSize = *fragSize
		rc.RebuildDelay = *rebuildD
		rc.ScanPeriod = *scanP
		rc.HotRate = *hotRate
		rc.ColdRate = *coldRate
		switch strings.ToLower(*degraded) {
		case "fetch":
			rc.Degraded = replica.DegradedFetch
		case "reject":
			rc.Degraded = replica.DegradedReject
		default:
			return fmt.Errorf("unknown -degraded mode %q (want fetch or reject)", *degraded)
		}
		cfg.Replication = rc
	}
	// Validate eagerly so flag mistakes surface as one clean error even
	// when -reps is zero.
	if err := cfg.Validate(); err != nil {
		return err
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer := system.NewTracer(f)
		defer tracer.Flush()
		cfg.Trace = tracer
	}

	var results []system.Results
	for i := 0; i < *reps; i++ {
		cfg.Seed = *seed + uint64(i)
		sys, err := system.New(cfg)
		if err != nil {
			return err
		}
		r := sys.Run()
		if *jsonOut {
			results = append(results, r)
		} else {
			printResults(w, r)
		}
		if *audit {
			if err := sys.Audit(); err != nil {
				return fmt.Errorf("audit (seed %d): %w", cfg.Seed, err)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}

func parsePolicy(name string) (policy.Kind, error) {
	switch strings.ToUpper(name) {
	case "LOCAL":
		return policy.Local, nil
	case "RANDOM":
		return policy.Random, nil
	case "BNQ":
		return policy.BNQ, nil
	case "BNQRD":
		return policy.BNQRD, nil
	case "LERT":
		return policy.LERT, nil
	case "WORK":
		return policy.Work, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}

func printResults(w io.Writer, r system.Results) {
	fmt.Fprintf(w, "policy=%s seed=%d completed=%d\n", r.Policy, r.Seed, r.Completed)
	fmt.Fprintf(w, "  W (mean wait)      %10.3f\n", r.MeanWait)
	fmt.Fprintf(w, "  mean response      %10.3f\n", r.MeanResponse)
	fmt.Fprintf(w, "  fairness F         %+10.4f\n", r.Fairness)
	fmt.Fprintf(w, "  rho_cpu / rho_disk %10.3f / %.3f\n", r.CPUUtil, r.DiskUtil)
	fmt.Fprintf(w, "  subnet util        %10.3f\n", r.SubnetUtil)
	fmt.Fprintf(w, "  throughput         %10.4f q/unit\n", r.Throughput)
	fmt.Fprintf(w, "  remote fraction    %10.3f\n", r.RemoteFrac)
	fmt.Fprintf(w, "  resp p50/p95/p99   %10.3f / %.3f / %.3f\n",
		r.RespQuantiles.P50, r.RespQuantiles.P95, r.RespQuantiles.P99)
	if r.OpenArrivals > 0 {
		fmt.Fprintf(w, "  open arrivals      %10d\n", r.OpenArrivals)
	}
	if r.DeadlineMet > 0 || r.DeadlineMisses > 0 {
		fmt.Fprintf(w, "  deadlines: met=%d missed=%d aborted=%d\n",
			r.DeadlineMet, r.DeadlineMisses, r.QueriesAborted)
	}
	if r.Hedged > 0 {
		fmt.Fprintf(w, "  hedges: launched=%d wins=%d\n", r.Hedged, r.HedgeWins)
	}
	if r.SiteCrashes > 0 || r.QueriesLost > 0 || r.QueriesRejected > 0 || r.Availability < 1 {
		fmt.Fprintf(w, "  availability       %10.4f\n", r.Availability)
		fmt.Fprintf(w, "  avail. response    %10.3f\n", r.AvailResponse)
		fmt.Fprintf(w, "  crashes=%d lost=%d retried=%d rejected=%d\n",
			r.SiteCrashes, r.QueriesLost, r.QueriesRetried, r.QueriesRejected)
	}
	if r.SlowEpisodes > 0 || r.Brownouts > 0 {
		var degraded float64
		for _, d := range r.DegradedTime {
			degraded += d
		}
		fmt.Fprintf(w, "  fail-slow: episodes=%d degraded=%.1f brownouts=%d (net %.1f)\n",
			r.SlowEpisodes, degraded, r.Brownouts, r.BrownoutTime)
	}
	if r.SuspectTransfers > 0 || r.SuspectSites > 0 || r.HedgeWinsVsSlow > 0 {
		fmt.Fprintf(w, "  suspicion: transfers=%d suspects=%d hedge-wins-vs-slow=%d\n",
			r.SuspectTransfers, r.SuspectSites, r.HedgeWinsVsSlow)
	}
	if r.ParallelQueries > 0 {
		var wide uint64
		for k := 1; k < len(r.DOPHist); k++ {
			wide += r.DOPHist[k]
		}
		fmt.Fprintf(w, "  plans: parallel=%d wide=%d inter-bytes=%.1f\n",
			r.ParallelQueries, wide, r.IntermediateBytes)
	}
	if r.Operators > 0 {
		fmt.Fprintf(w, "  operators: spawned=%d done=%d aborted=%d preempted=%d\n",
			r.Operators, r.OperatorsCompleted, r.OperatorsAborted, r.OperatorsPreempted)
	}
	if r.QueriesShed > 0 || r.QueriesDeferred > 0 {
		fmt.Fprintf(w, "  admission: shed=%d deferred=%d\n", r.QueriesShed, r.QueriesDeferred)
	}
	if r.ReplicasRebuilt > 0 || r.ReplicasAdded > 0 || r.ReplicasDropped > 0 || r.RebuildsAborted > 0 {
		fmt.Fprintf(w, "  replicas: rebuilt=%d added=%d dropped=%d aborted=%d (lat %.3f)\n",
			r.ReplicasRebuilt, r.ReplicasAdded, r.ReplicasDropped, r.RebuildsAborted, r.MeanRebuildLatency)
	}
	if r.DegradedReads > 0 || r.NoReplicaRejects > 0 {
		fmt.Fprintf(w, "  degraded: reads=%d noreplica=%d\n", r.DegradedReads, r.NoReplicaRejects)
	}
	if r.MinFragAvailability > 0 && r.MinFragAvailability < 1 {
		fmt.Fprintf(w, "  frag avail         %10.4f (min %.4f)\n", r.FragAvailability, r.MinFragAvailability)
	}
	if r.EstReadsErr > 0 || r.EstCPUErr > 0 {
		fmt.Fprintf(w, "  est. error         %10.3f reads / %.3f cpu (herd %0.3f)\n",
			r.EstReadsErr, r.EstCPUErr, r.HerdFrac)
	}
	for _, c := range r.ByClass {
		fmt.Fprintf(w, "  class %-4s n=%-7d W=%8.3f resp=%8.3f exec=%7.3f normW=%6.3f\n",
			c.Name, c.Completed, c.MeanWait, c.MeanResp, c.MeanExecService, c.NormWait)
	}
}
