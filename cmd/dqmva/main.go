// Command dqmva runs the Section-3 optimal-allocation analysis for one
// arrival condition A(L, i): it prints the expected per-cycle waiting
// time and system fairness of every candidate allocation, the optimal
// and BNQ choices, and the WIF/FIF factors.
//
// Usage:
//
//	dqmva -cpu1 0.05 -cpu2 1.0 -load "1,1,0,0/0,0,1,1" -class 1
//
// The load matrix lists class-1 counts per site, then class-2 counts,
// separated by '/'.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dqalloc/internal/optimal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dqmva:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dqmva", flag.ContinueOnError)
	var (
		cpu1  = fs.Float64("cpu1", 0.05, "class-1 per-cycle CPU demand")
		cpu2  = fs.Float64("cpu2", 1.0, "class-2 per-cycle CPU demand")
		disks = fs.Int("disks", 2, "disks per site")
		load  = fs.String("load", "1,1,0,0/0,0,1,1", "load matrix: class-1 counts / class-2 counts")
		class = fs.Int("class", 1, "arriving query's class (1 or 2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	l, err := parseLoad(*load)
	if err != nil {
		return err
	}
	if *class != 1 && *class != 2 {
		return fmt.Errorf("class must be 1 or 2, got %d", *class)
	}
	p := optimal.Params{
		NumSites: len(l[0]),
		NumDisks: *disks,
		DiskTime: 1,
		PageCPU:  []float64{*cpu1, *cpu2},
	}
	a, err := optimal.Evaluate(p, l, *class-1)
	if err != nil {
		return err
	}

	fmt.Printf("arrival A(L, %d) with cpu demands %v/%v, %d sites x %d disks\n",
		*class, *cpu1, *cpu2, p.NumSites, p.NumDisks)
	fmt.Printf("site totals %v (QD = %d)\n\n", l.SiteTotals(), l.QueryDifference())
	fmt.Println("allocation   arrival-wait/cycle   system |W1^-W2^|")
	for _, o := range a.Outcomes {
		marks := ""
		if o.Site == a.OptWaitSite {
			marks += " <-min wait"
		}
		if o.Site == a.OptFairSite {
			marks += " <-min unfairness"
		}
		fmt.Printf("  site %d %18.4f %18.4f%s\n", o.Site+1, o.ArrivalWait, o.Fairness, marks)
	}
	bnq := make([]string, len(a.BNQSites))
	for i, s := range a.BNQSites {
		bnq[i] = strconv.Itoa(s + 1)
	}
	fmt.Printf("\nBNQ candidates: sites %s\n", strings.Join(bnq, ","))
	fmt.Printf("W_BNQ = %.4f  W_OPT = %.4f  WIF = %.2f\n", a.WaitBNQ, a.WaitOpt, a.WIF())
	fmt.Printf("F_BNQ = %.4f  F_OPT = %.4f  FIF = %.2f\n", a.FairBNQ, a.FairOpt, a.FIF())
	return nil
}

// parseLoad parses "1,1,0,0/0,0,1,1" into a LoadMatrix.
func parseLoad(s string) (optimal.LoadMatrix, error) {
	rows := strings.Split(s, "/")
	if len(rows) != 2 {
		return nil, fmt.Errorf("load matrix needs two '/'-separated class rows, got %d", len(rows))
	}
	var l optimal.LoadMatrix
	width := -1
	for _, row := range rows {
		cells := strings.Split(row, ",")
		if width == -1 {
			width = len(cells)
		} else if len(cells) != width {
			return nil, fmt.Errorf("load rows have different widths")
		}
		vals := make([]int, 0, len(cells))
		for _, c := range cells {
			v, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				return nil, fmt.Errorf("bad load count %q: %w", c, err)
			}
			vals = append(vals, v)
		}
		l = append(l, vals)
	}
	return l, nil
}
