package main

import "testing"

func TestParseLoad(t *testing.T) {
	l, err := parseLoad("2,1,0,0/0,0,1,1")
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 || len(l[0]) != 4 {
		t.Fatalf("shape = %dx%d", len(l), len(l[0]))
	}
	if l[0][0] != 2 || l[1][3] != 1 {
		t.Errorf("values = %v", l)
	}
	// Whitespace tolerated.
	if _, err := parseLoad("1, 1/0 ,0"); err != nil {
		t.Errorf("whitespace rejected: %v", err)
	}
}

func TestParseLoadErrors(t *testing.T) {
	for _, bad := range []string{
		"1,1,1,1",     // one row
		"1,1/1",       // ragged
		"1,x/0,0",     // non-numeric
		"1,1/0,0/1,1", // three rows
	} {
		if _, err := parseLoad(bad); err == nil {
			t.Errorf("parseLoad(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-class", "3"}); err == nil {
		t.Error("class 3 accepted")
	}
	if err := run([]string{"-load", "garbage"}); err == nil {
		t.Error("garbage load accepted")
	}
}

func TestRunHappyPath(t *testing.T) {
	if err := run([]string{"-load", "1,1,0,0/0,0,1,1", "-class", "1"}); err != nil {
		t.Errorf("default analysis failed: %v", err)
	}
}
