module dqalloc

go 1.22
