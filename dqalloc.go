// Package dqalloc is a reproduction of Carey, Livny & Lu, "Dynamic Task
// Allocation in a Distributed Database System" (Univ. of Wisconsin CS TR
// #556, 1984 / ICDCS 1985): a discrete-event simulation of a fully
// replicated distributed database system with multi-class query
// workloads, together with the paper's dynamic query allocation policies
// (BNQ, BNQRD, LERT) and its exact mean-value-analysis study of optimal
// allocations.
//
// This package is the public facade: it re-exports the configuration and
// result types and provides one-call entry points. The building blocks
// live in internal/ packages (see DESIGN.md for the map):
//
//   - internal/sim       — deterministic discrete-event kernel
//   - internal/queue     — FCFS / processor-sharing / disk-array centers
//   - internal/network   — polled token-ring subnet
//   - internal/workload  — multi-class query model
//   - internal/site      — the Figure-2 DB site
//   - internal/policy    — the Figure 3–6 allocation algorithms
//   - internal/loadinfo  — perfect and periodically-broadcast load views
//   - internal/system    — the full Figure-1 closed system
//   - internal/mva       — exact multiclass Mean Value Analysis
//   - internal/optimal   — the Section-3 WIF/FIF study
//   - internal/exper     — one harness per paper table
//
// # Quickstart
//
//	cfg := dqalloc.DefaultConfig()        // the paper's Table-7 baseline
//	cfg.PolicyKind = dqalloc.LERT
//	res, err := dqalloc.Run(cfg)
//	// res.MeanWait is the paper's W̄; res.Fairness its F.
package dqalloc

import (
	"fmt"

	"dqalloc/internal/arrival"
	"dqalloc/internal/fault"
	"dqalloc/internal/loadinfo"
	"dqalloc/internal/noise"
	"dqalloc/internal/policy"
	"dqalloc/internal/sim"
	"dqalloc/internal/site"
	"dqalloc/internal/stats"
	"dqalloc/internal/system"
	"dqalloc/internal/workload"
)

// Re-exported model types. Config drives a run; Results carries the
// paper's metrics (W̄, F, utilizations, subnet load).
type (
	// Config parameterizes one simulation run.
	Config = system.Config
	// Results holds one run's measurements.
	Results = system.Results
	// ClassResults is the per-class breakdown inside Results.
	ClassResults = system.ClassResults
	// Class describes one query class (Table 2 parameters).
	Class = workload.Class
	// PolicyKind selects a built-in allocation policy.
	PolicyKind = policy.Kind
	// Policy is the allocation-policy interface for custom strategies.
	Policy = policy.Policy
	// FaultConfig parameterizes the fault-injection layer (set
	// Config.Fault to enable site crashes, lossy messaging, and the
	// timeout/retry failover).
	FaultConfig = fault.Config
	// SuspectConfig parameterizes the gray-failure suspicion detector
	// (set Config.Suspect to score each site's realized slowdown against
	// the population and route queries around fail-slow sites).
	SuspectConfig = loadinfo.SuspectConfig
	// NoiseConfig parameterizes the estimation-error injector (set
	// Config.Noise to make allocators decide on perturbed demand
	// estimates while execution consumes the true demands).
	NoiseConfig = noise.Config
	// Tuning holds the selector's anti-herd knobs — hysteresis margin,
	// power-of-K remote sampling, and probabilistic tie-breaking (set
	// Config.Tuning; cost-based policies only).
	Tuning = policy.Tuning
	// AdmissionConfig parameterizes per-site overload admission control
	// (set Config.Admission to bound committed queries per site, with
	// deferred resubmission or immediate shedding on overload).
	AdmissionConfig = system.AdmissionConfig
	// ArrivalConfig parameterizes the open-arrival subsystem (set
	// Config.Arrival to replace the closed terminals with per-class
	// Poisson or bursty MMPP sources at a chosen offered load).
	ArrivalConfig = arrival.Config
	// DeadlineConfig parameterizes per-query deadlines (set
	// Config.Deadline to abort queries whose response time exceeds the
	// budget, wherever they are in the pipeline).
	DeadlineConfig = system.DeadlineConfig
	// HedgeConfig parameterizes hedged execution (set Config.Hedge to
	// re-issue straggling remote queries to a backup site; first
	// completion wins).
	HedgeConfig = system.HedgeConfig
	// ParallelConfig parameterizes operator-tree queries (set
	// Config.Parallel to turn some queries into scan/filter/join plans
	// whose operators the allocator may place — and split — across
	// sites).
	ParallelConfig = system.ParallelConfig
	// ParallelMode selects how a multi-operator plan is placed (see
	// ParallelSingle, ParallelOperator, ParallelDOP).
	ParallelMode = policy.ParallelMode
	// Plan is an operator-tree query plan; Operator is one of its nodes.
	Plan     = workload.Plan
	Operator = workload.Operator
	// Quantiles carries the log-histogram response-time quantiles
	// (p50–p99.9) reported in Results.
	Quantiles = stats.Quantiles
	// SchedulerImpl selects the kernel's future-event list
	// implementation (set Config.Scheduler; results are identical
	// either way — the knob trades only speed).
	SchedulerImpl = sim.Impl
)

// Built-in allocation policies (paper Section 4 plus baselines).
const (
	// Local executes every query at its arrival site.
	Local = policy.Local
	// Random picks a uniformly random site.
	Random = policy.Random
	// BNQ balances the number of queries per site (Figure 4).
	BNQ = policy.BNQ
	// BNQRD balances same-bound query counts (Figure 5).
	BNQRD = policy.BNQRD
	// LERT minimizes the estimated response time (Figure 6).
	LERT = policy.LERT
	// Work balances outstanding estimated work per resource (extension).
	Work = policy.Work
)

// Demand-estimate modes (Section 1.2.2).
const (
	// EstimateClassMean exposes class-mean demands to the allocator.
	EstimateClassMean = workload.EstimateClassMean
	// EstimateActual exposes exact sampled demands (oracle ablation).
	EstimateActual = workload.EstimateActual
)

// Load-information modes (Section 4.4).
const (
	// InfoPerfect gives allocators the live load table.
	InfoPerfect = system.InfoPerfect
	// InfoPeriodic gives allocators periodic snapshots (set InfoPeriod).
	InfoPeriodic = system.InfoPeriodic
)

// Event-scheduler implementations (DESIGN.md §12). Both fire
// bit-identical event streams; the calendar queue is faster.
const (
	// SchedulerCalendar is the adaptive O(1) calendar queue (default).
	SchedulerCalendar = sim.Calendar
	// SchedulerHeap is the reference binary heap.
	SchedulerHeap = sim.Heap
)

// Plan-placement modes for Config.Parallel (DESIGN.md §15).
const (
	// ParallelSingle anchors each whole operator tree at one
	// policy-chosen site.
	ParallelSingle = policy.ParallelSingle
	// ParallelOperator places each operator independently; intermediate
	// results ship between sites.
	ParallelOperator = policy.ParallelOperator
	// ParallelDOP additionally splits the bottom join
	// fragment-and-replicate across a cost-chosen set of sites.
	ParallelDOP = policy.ParallelDOP
)

// Disk service distributions.
const (
	// DiskUniform is the paper's Table-7 simulation setting.
	DiskUniform = site.DiskUniform
	// DiskExponential is the Section-3 analytical setting (product form).
	DiskExponential = site.DiskExponential
)

// DefaultFaultConfig returns an enabled fault configuration with
// moderate failure rates (MTTF 10000, MTTR 500, no message loss) and
// the default watchdog settings. Assign it to Config.Fault and adjust.
func DefaultFaultConfig() FaultConfig { return fault.Default() }

// DefaultSlowFaultConfig returns a pure gray-failure fault
// configuration: sites never crash but suffer 10× fail-slow episodes
// every 4000 time units lasting 800 on average, while still answering
// queries and broadcasting load reports. Assign it to Config.Fault and
// adjust; pair with DefaultSuspectConfig to route around the episodes.
func DefaultSlowFaultConfig() FaultConfig { return fault.DefaultSlow() }

// DefaultSuspectConfig returns an enabled gray-failure detector:
// suspect a site once its slowdown EWMA exceeds 3× the population
// median (clearing at 1.5×), with a 500-unit probation. Assign it to
// Config.Suspect and adjust.
func DefaultSuspectConfig() SuspectConfig { return loadinfo.DefaultSuspect() }

// DefaultNoiseConfig returns an enabled estimation-error configuration:
// mean-preserving lognormal noise with sigma 0.5 on both demand
// estimates. Assign it to Config.Noise and adjust.
func DefaultNoiseConfig() NoiseConfig { return noise.Default() }

// DefaultAdmissionConfig returns an enabled admission-control
// configuration: at most 15 committed queries per site, with up to 3
// deferrals (mean resubmission delay 5) before a query is shed. Assign
// it to Config.Admission and adjust.
func DefaultAdmissionConfig() AdmissionConfig { return system.DefaultAdmission() }

// DefaultPoissonArrivals returns an enabled open-arrival configuration
// with a plain Poisson source at the given system-wide rate (queries
// per time unit). Assign it to Config.Arrival and adjust.
func DefaultPoissonArrivals(rate float64) ArrivalConfig { return arrival.DefaultPoisson(rate) }

// DefaultMMPPArrivals returns an enabled open-arrival configuration
// with a 2-state MMPP source at the given mean rate: 4× bursts with
// mean dwell 400 calm / 100 bursting. Assign it to Config.Arrival and
// adjust.
func DefaultMMPPArrivals(rate float64) ArrivalConfig { return arrival.DefaultMMPP(rate) }

// DefaultDeadlineConfig returns an enabled deadline configuration with
// a 400-time-unit response budget. Assign it to Config.Deadline and
// adjust.
func DefaultDeadlineConfig() DeadlineConfig { return system.DefaultDeadline() }

// DefaultHedgeConfig returns an enabled hedging configuration: hedge
// remote stragglers past the p95 of their class's measured responses,
// never earlier than 50 time units after dispatch. Assign it to
// Config.Hedge and adjust.
func DefaultHedgeConfig() HedgeConfig { return system.DefaultHedge() }

// DefaultParallelConfig returns an enabled operator-tree configuration:
// 30% of queries become join plans placed per-operator across sites,
// with the default selectivities and shipping costs. Assign it to
// Config.Parallel, pick a Mode, and adjust.
func DefaultParallelConfig() ParallelConfig { return system.DefaultParallel() }

// DefaultConfig returns the paper's baseline configuration: 6 sites, 2
// disks per site, 20 terminals per site with mean think time 350, a
// 50/50 I/O-bound / CPU-bound mix (per-page CPU 0.05 / 1.0, 20 reads),
// msg_length 1, LERT allocation with perfect load information.
func DefaultConfig() Config { return system.Default() }

// Run executes one simulation of cfg and returns its measurements. With
// cfg.Audit set, a runtime-invariant violation (internal/check) is
// returned as an error alongside the measurements.
func Run(cfg Config) (Results, error) {
	sys, err := system.New(cfg)
	if err != nil {
		return Results{}, err
	}
	res := sys.Run()
	if err := sys.Audit(); err != nil {
		return res, err
	}
	return res, nil
}

// Replications runs cfg reps times with consecutive seeds starting at
// cfg.Seed and returns all results. Use stats from the replications to
// build confidence intervals.
func Replications(cfg Config, reps int) ([]Results, error) {
	if reps < 1 {
		return nil, fmt.Errorf("dqalloc: reps %d < 1", reps)
	}
	out := make([]Results, 0, reps)
	base := cfg.Seed
	for i := 0; i < reps; i++ {
		cfg.Seed = base + uint64(i)
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
